open Afd_ioa
open Afd_core
open Afd_system

let detector_name = "participant"

let queries t =
  List.filteri (fun _ _ -> true) t
  |> List.mapi (fun k a -> (k, a))
  |> List.filter_map (fun (k, a) ->
         match a with
         | Act.Query { at; detector } when String.equal detector detector_name ->
           Some (k, at)
         | _ -> None)

let responses t =
  List.mapi (fun k a -> (k, a)) t
  |> List.filter_map (fun (k, a) ->
         match a with
         | Act.Resp { at; detector; payload = Act.Pleader l }
           when String.equal detector detector_name ->
           Some (k, at, l)
         | _ -> None)

let check ~n t =
  let qs = queries t and rs = responses t in
  let common_id =
    match rs with
    | [] -> Verdict.Sat
    | (_, _, l0) :: rest ->
      if List.for_all (fun (_, _, l) -> Loc.equal l l0) rest then Verdict.Sat
      else Verdict.Violated "responses name different IDs"
  in
  let queried_first =
    List.fold_left
      (fun acc (k, _, l) ->
        if List.exists (fun (kq, i) -> Loc.equal i l && kq < k) qs then acc
        else
          Verdict.(
            acc
            &&& Violated
                  (Fmt.str "response names %a which had not queried yet" Loc.pp l)))
      Verdict.Sat rs
  in
  let crashed = ref Loc.Set.empty in
  let no_resp_after_crash =
    List.fold_left
      (fun acc a ->
        match a with
        | Act.Crash i ->
          crashed := Loc.Set.add i !crashed;
          acc
        | Act.Resp { at; detector; _ }
          when String.equal detector detector_name && Loc.Set.mem at !crashed ->
          Verdict.(acc &&& Violated (Fmt.str "response at crashed %a" Loc.pp at))
        | _ -> acc)
      Verdict.Sat t
  in
  let faulty =
    List.fold_left
      (fun acc a -> match a with Act.Crash i -> Loc.Set.add i acc | _ -> acc)
      Loc.Set.empty t
  in
  let liveness =
    List.fold_left
      (fun acc i ->
        let live = not (Loc.Set.mem i faulty) in
        let queried = List.exists (fun (_, j) -> Loc.equal i j) qs in
        let answered = List.exists (fun (_, j, _) -> Loc.equal i j) rs in
        if live && queried && not answered then
          Verdict.(
            acc &&& Undecided (Fmt.str "live %a queried but has no response" Loc.pp i))
        else acc)
      Verdict.Sat (Loc.universe ~n)
  in
  Verdict.(common_id &&& queried_first &&& no_resp_after_crash &&& liveness)

let automaton ~n =
  let kind = function
    | Act.Query { detector; _ } when String.equal detector detector_name ->
      Some Automaton.Input
    | Act.Resp { detector; _ } when String.equal detector detector_name ->
      Some Automaton.Output
    | Act.Crash _ -> Some Automaton.Input
    | _ -> None
  in
  let step ((chosen, pending) as st) = function
    | Act.Query { at; detector } when String.equal detector detector_name ->
      let chosen = match chosen with None -> Some at | some -> some in
      Some (chosen, pending @ [ at ])
    | Act.Crash _ -> Some st
    | Act.Resp { at; detector; payload = Act.Pleader l }
      when String.equal detector detector_name -> (
      match (pending, chosen) with
      | at' :: rest, Some c when Loc.equal at at' && Loc.equal l c -> Some (chosen, rest)
      | _ -> None)
    | _ -> None
  in
  let task =
    { Automaton.task_name = "answer";
      fair = true;
      enabled =
        (fun (chosen, pending) ->
          match (pending, chosen) with
          | at :: _, Some c ->
            Some (Act.Resp { at; detector = detector_name; payload = Act.Pleader c })
          | _ -> None);
    }
  in
  ignore n;
  { Automaton.name = "participant-fd"; kind; start = (None, []); step; tasks = [ task ] }

(* --- direction 1: consensus using the participant detector --- *)

type c_state = {
  n : int;
  self : Loc.t;
  value : bool option;
  values : bool Loc.Map.t;  (* proposals heard, by origin *)
  queried : bool;
  leader : Loc.t option;
  decided : bool;
  outbox : Process.Outbox.t;
}

let cons_handle st = function
  | Process.Propose v ->
    if st.value = None then
      { st with
        value = Some v;
        values = Loc.Map.add st.self v st.values;
        outbox = Process.Outbox.broadcast st.outbox ~n:st.n ~self:st.self (Msg.Decided { v });
      }
    else st
  | Process.Receive { src; msg = Msg.Decided { v } } ->
    { st with values = Loc.Map.add src v st.values }
  | Process.Receive _ -> st
  | Process.Fd _ -> st

(* The process's locally controlled actions, in order: drain the
   broadcast, then query, then (once the leader's value arrived)
   decide.  The query needs to be an output the Process glue does not
   know about, so this algorithm is built directly on Automaton. *)
let cons_process ~n ~loc =
  let kind = function
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Propose { at; _ } when Loc.equal at loc -> Some Automaton.Input
    | Act.Receive { dst; _ } when Loc.equal dst loc -> Some Automaton.Input
    | Act.Resp { at; detector; _ }
      when Loc.equal at loc && String.equal detector detector_name ->
      Some Automaton.Input
    | Act.Send { src; _ } when Loc.equal src loc -> Some Automaton.Output
    | Act.Query { at; detector } when Loc.equal at loc && String.equal detector detector_name
      ->
      Some Automaton.Output
    | Act.Decide { at; _ } when Loc.equal at loc -> Some Automaton.Output
    | _ -> None
  in
  let current (st, failed) =
    if failed then None
    else
      match Process.Outbox.peek st.outbox with
      | Some (Process.Send { dst; msg }) -> Some (Act.Send { src = loc; dst; msg })
      | Some (Process.Decide v) -> Some (Act.Decide { at = loc; v })
      | Some (Process.Internal tag) -> Some (Act.Step { at = loc; tag })
      | None ->
        if st.value <> None && not st.queried then
          Some (Act.Query { at = loc; detector = detector_name })
        else if not st.decided then
          match st.leader with
          | Some l -> (
            match Loc.Map.find_opt l st.values with
            | Some v -> Some (Act.Decide { at = loc; v })
            | None -> None)
          | None -> None
        else None
  in
  let step ((st, failed) as full) act =
    match act with
    | Act.Crash i when Loc.equal i loc -> Some (st, true)
    | Act.Propose { at; v } when Loc.equal at loc ->
      Some (cons_handle st (Process.Propose v), failed)
    | Act.Receive { dst; src; msg } when Loc.equal dst loc ->
      Some (cons_handle st (Process.Receive { src; msg }), failed)
    | Act.Resp { at; payload = Act.Pleader l; _ } when Loc.equal at loc ->
      Some ({ st with leader = Some l }, failed)
    | _ ->
      if current full = Some act then
        (match act with
        | Act.Send _ -> Some ({ st with outbox = Process.Outbox.pop st.outbox }, failed)
        | Act.Query _ -> Some ({ st with queried = true }, failed)
        | Act.Decide _ -> Some ({ st with decided = true }, failed)
        | _ -> None)
      else None
  in
  let task =
    { Automaton.task_name = "step"; fair = true; enabled = current }
  in
  { Automaton.name = Printf.sprintf "partcons_%s" (Loc.to_string loc);
    kind;
    start =
      ( { n;
          self = loc;
          value = None;
          values = Loc.Map.empty;
          queried = false;
          leader = None;
          decided = false;
          outbox = Process.Outbox.empty;
        },
        false );
    step;
    tasks = [ task ];
  }

let consensus_net ~n ~values ~crashable =
  let processes =
    List.map (fun i -> Component.C (cons_process ~n ~loc:i)) (Loc.universe ~n)
  in
  Net.assemble ~n
    ~detectors:[ Component.C (automaton ~n) ]
    ~environment:(Environment.scripted ~values)
    ~crashable ~processes ()

(* --- direction 2: the participant detector using consensus --- *)

(* Front-end at location i (n = 2): translate a query into a proposal
   of the location's own ID (as a bool) for the underlying consensus,
   and answer all local queries with the decided ID. *)
type fe_state = {
  fe_pending : int;  (* unanswered queries *)
  fe_proposed : bool;
  fe_decided : Loc.t option;
  fe_failed : bool;
}

let frontend ~loc =
  let kind = function
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Query { at; detector } when Loc.equal at loc && String.equal detector detector_name
      ->
      Some Automaton.Input
    | Act.Decide { at; _ } when Loc.equal at loc -> Some Automaton.Input
    | Act.Propose { at; _ } when Loc.equal at loc -> Some Automaton.Output
    | Act.Resp { at; detector; _ }
      when Loc.equal at loc && String.equal detector detector_name ->
      Some Automaton.Output
    | _ -> None
  in
  let current st =
    if st.fe_failed then None
    else if st.fe_pending > 0 && not st.fe_proposed then
      (* propose own ID: bool encodes the location for n = 2 *)
      Some (Act.Propose { at = loc; v = Loc.equal loc 1 })
    else
      match (st.fe_pending > 0, st.fe_decided) with
      | true, Some l ->
        Some (Act.Resp { at = loc; detector = detector_name; payload = Act.Pleader l })
      | _ -> None
  in
  let step st act =
    match act with
    | Act.Crash i when Loc.equal i loc -> Some { st with fe_failed = true }
    | Act.Query { at; _ } when Loc.equal at loc ->
      Some { st with fe_pending = st.fe_pending + 1 }
    | Act.Decide { at; v } when Loc.equal at loc ->
      Some { st with fe_decided = Some (if v then 1 else 0) }
    | _ ->
      if current st = Some act then
        (match act with
        | Act.Propose _ -> Some { st with fe_proposed = true }
        | Act.Resp _ -> Some { st with fe_pending = st.fe_pending - 1 }
        | _ -> None)
      else None
  in
  let task = { Automaton.task_name = "frontend"; fair = true; enabled = current } in
  { Automaton.name = Printf.sprintf "frontend_%s" (Loc.to_string loc);
    kind;
    start = { fe_pending = 0; fe_proposed = false; fe_decided = None; fe_failed = false };
    step;
    tasks = [ task ];
  }

(* Query environment: queries once per location (unless crashed). *)
let query_env ~loc =
  let kind = function
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Query { at; detector } when Loc.equal at loc && String.equal detector detector_name
      ->
      Some Automaton.Internal (* owned below; see note *)
    | _ -> None
  in
  ignore kind;
  (* Queries are outputs of this environment and inputs of the
     front-end. *)
  let kind = function
    | Act.Crash i when Loc.equal i loc -> Some Automaton.Input
    | Act.Query { at; detector } when Loc.equal at loc && String.equal detector detector_name
      ->
      Some Automaton.Output
    | Act.Resp { at; detector; _ }
      when Loc.equal at loc && String.equal detector detector_name ->
      Some Automaton.Input
    | _ -> None
  in
  let step (queried, failed) = function
    | Act.Crash i when Loc.equal i loc -> Some (queried, true)
    | Act.Query _ when not queried && not failed -> Some (true, failed)
    | Act.Resp _ -> Some (queried, failed)
    | _ -> None
  in
  let task =
    { Automaton.task_name = Printf.sprintf "query_%s" (Loc.to_string loc);
      fair = true;
      enabled =
        (fun (queried, failed) ->
          if queried || failed then None
          else Some (Act.Query { at = loc; detector = detector_name }));
    }
  in
  { Automaton.name = Printf.sprintf "queryenv_%s" (Loc.to_string loc);
    kind;
    start = (false, false);
    step;
    tasks = [ task ];
  }

let extraction_net ~crashable =
  let n = 2 in
  let flood = Flood_p.processes ~n ~f:1 in
  let detector =
    Fd_bridge.lift_set ~detector:Flood_p.detector_name (Afd_automata.fd_perfect ~n)
  in
  let frontends = List.map (fun i -> Component.C (frontend ~loc:i)) (Loc.universe ~n) in
  let query_envs = List.map (fun i -> Component.C (query_env ~loc:i)) (Loc.universe ~n) in
  Net.assemble ~n
    ~detectors:[ Component.C detector ]
    ~environment:query_envs ~extras:frontends ~crashable ~processes:flood ()
