(** The f-crash-tolerant binary consensus problem (Section 9.1).

    [T_P] is the set of sequences over [I_P ∪ O_P] such that {e if} the
    trace satisfies environment well-formedness and f-crash limitation,
    {e then} it satisfies crash validity, agreement, validity, and
    termination.  Each clause is exposed separately (they are checked
    individually by tests and reported individually by benches), and
    {!problem} packages the full conditional. *)

open Afd_system
open Afd_core

val environment_well_formedness : n:int -> Act.t list -> Verdict.t
(** (1) at most one propose per location; (2) no propose at a location
    after its crash; (3) exactly one propose at each live location
    ([Undecided] while missing). *)

val f_crash_limitation : f:int -> Act.t list -> bool
(** At most [f] locations crash. *)

val crash_validity : Act.t list -> Verdict.t
(** No location decides after crashing. *)

val agreement : Act.t list -> Verdict.t
(** No two decide events carry different values. *)

val validity : Act.t list -> Verdict.t
(** Every decided value was proposed by someone. *)

val termination : n:int -> Act.t list -> Verdict.t
(** Each location decides at most once (violation otherwise); each live
    location decides at least once ([Undecided] while missing). *)

val guarantees : n:int -> Act.t list -> Verdict.t
(** Conjunction of crash validity, agreement, validity, termination. *)

val check : n:int -> f:int -> Act.t list -> Verdict.t
(** Full membership in [T_P]: the conditional of Section 9.1.  Traces
    whose hypothesis fails are vacuously [Sat]. *)

val problem : n:int -> f:int -> Act.t Problem.t
