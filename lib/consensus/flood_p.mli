(** Flooding consensus using the perfect failure detector P.

    The classic (f+1)-round FloodSet algorithm (Lynch, ch. 6), with P
    emulating synchronous rounds in the asynchronous system: a process
    in round [r] waits, for every other location [j], until it has
    either received [j]'s round-[r] message or seen [j] in P's
    suspicion output; P's strong accuracy makes skipping sound (only
    actually-crashed locations are skipped), its strong completeness
    makes waiting finite.  After round [f+1] every process decides the
    smallest value in its accumulated value set; with at most [f]
    crashes, one of the [f+1] rounds is free of "hiding" and the value
    sets coincide.

    Tolerates any [f <= n-1]. *)

open Afd_ioa
open Afd_system

val detector_name : string
(** The detector name the processes listen to ("P"). *)

type st
(** Algorithm state at one location (abstract; see [round] etc.). *)

val round : st -> int
val value_set : st -> Msg.vset
val has_decided : st -> bool

val process : n:int -> f:int -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
(** The process automaton at [loc]. *)

val processes : n:int -> f:int -> Act.t Component.t list

val net : n:int -> f:int -> ?values:bool list -> crashable:Loc.Set.t -> unit -> Net.t
(** Full system: processes + channels + crash automaton + the FD-P
    automaton (Algorithm 2) + environment.  With [values] the scripted
    environment proposes those values; otherwise E_C (Algorithm 4)
    lets the scheduler pick. *)
