open Afd_ioa
open Afd_system
open Afd_core

let detector_name = "P"

module Int_map = Map.Make (Int)

type st = {
  n : int;
  f : int;
  self : Loc.t;
  round : int;  (* 0 = waiting for proposal *)
  vals : Msg.vset;  (* monotone accumulated value set *)
  heard : Loc.Set.t Int_map.t;  (* senders heard from, per round *)
  suspects : Loc.Set.t;  (* latest P output *)
  outbox : Process.Outbox.t;
  decided : bool;
}

let round st = st.round
let value_set st = st.vals
let has_decided st = st.decided

let heard_in st r =
  match Int_map.find_opt r st.heard with None -> Loc.Set.empty | Some s -> s

let init ~n ~f ~self =
  { n;
    f;
    self;
    round = 0;
    vals = Msg.vset_empty;
    heard = Int_map.empty;
    suspects = Loc.Set.empty;
    outbox = Process.Outbox.empty;
    decided = false;
  }

let start_round st r =
  { st with
    round = r;
    outbox =
      Process.Outbox.broadcast st.outbox ~n:st.n ~self:st.self
        (Msg.Flood { round = r; vals = st.vals });
  }

let handle st = function
  | Process.Propose v ->
    (* Merge rather than overwrite: round-1 messages may have arrived
       before the local proposal, and their values must survive (an
       overwrite here loses agreement — caught by the exhaustive
       execution-tree experiment). *)
    if st.round = 0 then
      start_round { st with vals = Msg.vset_union st.vals (Msg.vset_of v) } 1
    else st
  | Process.Receive { src; msg = Msg.Flood { round = r; vals } } ->
    { st with
      vals = Msg.vset_union st.vals vals;
      heard = Int_map.add r (Loc.Set.add src (heard_in st r)) st.heard;
    }
  | Process.Receive _ -> st
  | Process.Fd { payload = Act.Pset s; _ } -> { st with suspects = s }
  | Process.Fd { payload = Act.Pleader _; _ } -> st

let can_advance st =
  st.round >= 1
  && (not st.decided)
  && Process.Outbox.is_empty st.outbox
  && List.for_all
       (fun j ->
         Loc.equal j st.self
         || Loc.Set.mem j (heard_in st st.round)
         || Loc.Set.mem j st.suspects)
       (Loc.universe ~n:st.n)

let output st =
  match Process.Outbox.peek st.outbox with
  | Some o -> Some o
  | None ->
    if not (can_advance st) then None
    else if st.round < st.f + 1 then Some (Process.Internal "advance")
    else (
      match Msg.vset_min st.vals with
      | Some v -> Some (Process.Decide v)
      | None -> None (* unreachable: round >= 1 implies a proposal *))

let after_output st = function
  | Process.Send _ -> { st with outbox = Process.Outbox.pop st.outbox }
  | Process.Internal _ -> start_round st (st.round + 1)
  | Process.Decide _ -> { st with decided = true }

let process ~n ~f ~loc =
  Process.automaton ~name:"flood" ~loc ~fd_names:[ detector_name ]
    { Process.init = init ~n ~f ~self:loc; handle; output; after_output }

let processes ~n ~f =
  List.map (fun i -> Component.C (process ~n ~f ~loc:i)) (Loc.universe ~n)

let net ~n ~f ?values ~crashable () =
  let detector =
    Fd_bridge.lift_set ~detector:detector_name (Afd_automata.fd_perfect ~n)
  in
  let environment =
    match values with
    | Some vs -> Environment.scripted ~values:vs
    | None -> Environment.consensus ~n
  in
  Net.assemble ~n
    ~detectors:[ Component.C detector ]
    ~environment ~crashable ~processes:(processes ~n ~f) ()
