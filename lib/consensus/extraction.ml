open Afd_ioa
open Afd_core
open Afd_system

type observation = Oproposed of bool | Odecided of bool

type candidate = Loc.t -> observation list -> Loc.Set.t option

let echo_decision _loc = function [] -> None | _ :: _ -> Some Loc.Set.empty

type result = {
  observations_equal : bool;
  verdict_a : Verdict.t;
  verdict_b : Verdict.t;
  refuted : bool;
}

let observations_of ~loc trace =
  List.filter_map
    (function
      | Act.Propose { at; v } when Loc.equal at loc -> Some (Oproposed v)
      | Act.Decide { at; v } when Loc.equal at loc -> Some (Odecided v)
      | _ -> None)
    trace

(* Build the grafted detector trace: one candidate output after each
   observation at its location, crash events passed through, and one
   final output per live location (the limit extension making the
   eventual clauses of the target spec checkable). *)
let graft ~n ~candidate trace =
  let hist = Hashtbl.create 8 in
  let events =
    List.filter_map
      (fun act ->
        match act with
        | Act.Crash i -> Some (Fd_event.Crash i)
        | Act.Propose { at; v } | Act.Decide { at; v } ->
          let obs =
            match act with
            | Act.Propose _ -> Oproposed v
            | _ -> Odecided v
          in
          let h = (try Hashtbl.find hist at with Not_found -> []) @ [ obs ] in
          Hashtbl.replace hist at h;
          Option.map (fun s -> Fd_event.Output (at, s)) (candidate at h)
        | Act.Send _ | Act.Receive _ | Act.Fd _ | Act.Step _ | Act.Query _ | Act.Resp _ | Act.Decide_id _ -> None)
      trace
  in
  let faulty = Fd_event.faulty events in
  let finals =
    List.filter_map
      (fun i ->
        if Loc.Set.mem i faulty then None
        else
          let h = try Hashtbl.find hist i with Not_found -> [] in
          Option.map (fun s -> Fd_event.Output (i, s)) (candidate i h))
      (Loc.universe ~n)
  in
  events @ finals

let quiescence_step trace =
  (* first index after which no Send/Receive/Decide occurs *)
  let last = ref 0 in
  List.iteri
    (fun k act ->
      match act with
      | Act.Send _ | Act.Receive _ | Act.Decide _ | Act.Propose _ -> last := k
      | Act.Crash _ | Act.Fd _ | Act.Step _ | Act.Query _ | Act.Resp _ | Act.Decide_id _ -> ())
    trace;
  !last + 1

let run_with ~retention ~n ~target ~candidate ~late_crash ~seed ~steps =
  let values = List.init n (fun i -> i mod 2 = 0) in
  let net_a = Flood_p.net ~n ~f:1 ~values ~crashable:Loc.Set.empty () in
  let run_a = Net.run ~retention net_a ~seed ~crash_at:[] ~steps in
  let q = quiescence_step run_a.Net.trace in
  let net_b = Flood_p.net ~n ~f:1 ~values ~crashable:(Loc.Set.singleton late_crash) () in
  let run_b = Net.run ~retention net_b ~seed ~crash_at:[ (q + 5, late_crash) ] ~steps in
  let observations_equal =
    List.for_all
      (fun i ->
        observations_of ~loc:i run_a.Net.trace = observations_of ~loc:i run_b.Net.trace)
      (Loc.universe ~n)
  in
  let grafted_a = graft ~n ~candidate run_a.Net.trace in
  let grafted_b = graft ~n ~candidate run_b.Net.trace in
  let verdict_a = Afd.check target ~n grafted_a in
  let verdict_b = Afd.check target ~n grafted_b in
  { observations_equal;
    verdict_a;
    verdict_b;
    refuted = not (Verdict.is_sat verdict_a && Verdict.is_sat verdict_b);
  }

let run ~n ~target ~candidate ~late_crash ~seed ~steps =
  run_with ~retention:Afd_ioa.Scheduler.Trace_only ~n ~target ~candidate ~late_crash
    ~seed ~steps
