(** Consensus using ◇P, by composing the ◇P→Ω transformer with the
    Synod algorithm — the executable form of Lemma 16's construction
    (stack the algorithm that solves D' using D under the algorithm
    that solves P using D').

    The system contains: a noisy ◇P automaton (transient false
    suspicions, then convergence), per-location transformer components
    emitting detector "Omega" outputs, and the Synod processes
    listening to "Omega".  The Synod code is reused verbatim — it
    cannot tell the extracted Ω from the native one. *)

open Afd_ioa
open Afd_core
open Afd_system

val evp_name : string
(** "EvP", the source detector's name in the system. *)

val net :
  n:int ->
  ?values:bool list ->
  ?noise:Loc.Set.t Afd_automata.noise ->
  crashable:Loc.Set.t ->
  unit ->
  Net.t
(** Default [noise] makes every location falsely suspect its right
    neighbour once before converging. *)

val default_noise : n:int -> Loc.Set.t Afd_automata.noise
