(** Consensus from Σ + Ω — the Synod protocol with {e dynamic quorums
    drawn from the quorum failure detector} instead of static
    majorities.

    Σ (the quorum detector) and Ω together are a weakest pair for
    consensus in systems with any number of crashes (Delporte-Gallet,
    Fauconnier, Guerraoui; the paper cites Σ in its AFD catalog).  The
    algorithm is {!Synod_omega} with every "wait for a majority"
    replaced by "wait until the responders contain some quorum
    currently output by Σ here":

    - safety needs only Σ's {e intersection} property — any two quorums
      used in any two ballots intersect, which is exactly what the
      standard Paxos argument requires of majorities;
    - termination needs Σ's {e completeness} (eventually quorums
      contain only live locations, so waiting on them terminates) and
      Ω's eventual leader, instead of a live-majority assumption.

    With the truthful [fd_sigma] (quorum = non-crashed locations) the
    system tolerates any [f <= n-1] crashes — strictly beyond
    {!Synod_omega}'s minority bound, which the tests demonstrate. *)

open Afd_ioa
open Afd_system

val sigma_name : string
(** "Sigma". *)

val omega_name : string
(** "Omega" (shared with {!Synod_omega}). *)

type st

val process : n:int -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
val processes : n:int -> Act.t Component.t list

val net : n:int -> ?values:bool list -> crashable:Loc.Set.t -> unit -> Net.t
(** Processes + channels + crash + the FD-Σ and FD-Ω automata +
    environment. *)
