open Afd_ioa
open Afd_system
open Afd_core

let detector_name = "Omega"

type phase = Idle | Phase1 | Phase2

type st = {
  n : int;
  self : Loc.t;
  proposal : bool option;
  (* proposer *)
  ballot : int;  (* current ballot; -1 before the first attempt *)
  phase : phase;
  promises : (Loc.t * (int * bool) option) list;  (* for the current ballot *)
  max_seen : int;  (* highest ballot observed anywhere *)
  (* acceptor *)
  promised : int;  (* -1 = none *)
  accepted : (int * bool) option;
  (* learner: acceptors heard per (ballot, value) *)
  learned : ((int * bool) * Loc.Set.t) list;
  decided : bool option;
  decide_emitted : bool;
  outbox : Process.Outbox.t;
}

let ballot st = st.ballot
let has_decided st = st.decide_emitted
let promised st = st.promised
let accepted st = st.accepted

let init ~n ~self =
  { n;
    self;
    proposal = None;
    ballot = -1;
    phase = Idle;
    promises = [];
    max_seen = -1;
    promised = -1;
    accepted = None;
    learned = [];
    decided = None;
    decide_emitted = false;
    outbox = Process.Outbox.empty;
  }

let majority st = (st.n / 2) + 1

let see st b = { st with max_seen = max st.max_seen b }

let next_ballot st =
  (* smallest ballot congruent to [self] mod n strictly above max_seen
     (and above our own current ballot) *)
  let floor = max st.max_seen st.ballot in
  let k = (floor / st.n) + 1 in
  (k * st.n) + st.self

let send st dst msg = { st with outbox = Process.Outbox.push st.outbox (Process.Send { dst; msg }) }

(* Deliver a message to our own acceptor/learner roles synchronously
   (channels only connect distinct locations). *)
let rec deliver st ~src msg =
  match msg with
  | Msg.Prepare { bal } ->
    let st = see st bal in
    if bal > st.promised then
      let st = { st with promised = bal } in
      respond st ~dst:src (Msg.Promise { bal; accepted = st.accepted })
    else respond st ~dst:src (Msg.Nack { bal })
  | Msg.Promise { bal; accepted } ->
    let st = see st bal in
    if st.phase = Phase1 && bal = st.ballot then begin
      let st =
        if List.exists (fun (j, _) -> Loc.equal j src) st.promises then st
        else { st with promises = (src, accepted) :: st.promises }
      in
      if List.length st.promises >= majority st then
        let v =
          let best =
            List.fold_left
              (fun best (_, acc) ->
                match (best, acc) with
                | None, x -> x
                | Some _, None -> best
                | Some (b1, _), Some (b2, _) -> if b2 > b1 then acc else best)
              None st.promises
          in
          match (best, st.proposal) with
          | Some (_, v), _ -> v
          | None, Some v -> v
          | None, None -> false (* unreachable: we only start with a proposal *)
        in
        let st = { st with phase = Phase2 } in
        broadcast st (Msg.Accept { bal = st.ballot; v })
      else st
    end
    else st
  | Msg.Nack { bal } ->
    let st = see st bal in
    if bal = st.ballot && st.phase <> Idle then { st with phase = Idle } else st
  | Msg.Accept { bal; v } ->
    let st = see st bal in
    if bal >= st.promised then
      let st = { st with promised = bal; accepted = Some (bal, v) } in
      broadcast st (Msg.Accepted { bal; v })
    else respond st ~dst:src (Msg.Nack { bal })
  | Msg.Accepted { bal; v } ->
    let st = see st bal in
    let key = (bal, v) in
    let voters =
      match List.assoc_opt key st.learned with
      | None -> Loc.Set.singleton src
      | Some s -> Loc.Set.add src s
    in
    let st = { st with learned = (key, voters) :: List.remove_assoc key st.learned } in
    if Loc.Set.cardinal voters >= majority st && st.decided = None then
      { st with decided = Some v }
    else st
  | Msg.Decided { v } -> if st.decided = None then { st with decided = Some v } else st
  | Msg.Flood _ | Msg.Ping _ | Msg.Fd_relay _ | Msg.Kprepare _ | Msg.Kpromise _
  | Msg.Knack _ | Msg.Kaccept _ | Msg.Kaccepted _ -> st

and respond st ~dst msg =
  if Loc.equal dst st.self then deliver st ~src:st.self msg else send st dst msg

and broadcast st msg =
  let st = { st with outbox = Process.Outbox.broadcast st.outbox ~n:st.n ~self:st.self msg } in
  deliver st ~src:st.self msg

let start_ballot st =
  let b = next_ballot st in
  let st = { st with ballot = b; phase = Phase1; promises = [] } in
  broadcast st (Msg.Prepare { bal = b })

let handle st = function
  | Process.Propose v ->
    if st.proposal = None then { st with proposal = Some v } else st
  | Process.Receive { src; msg } -> deliver st ~src msg
  | Process.Fd { payload = Act.Pleader l; _ } ->
    if
      Loc.equal l st.self && st.proposal <> None && st.decided = None
      && (st.phase = Idle || st.max_seen > st.ballot)
    then start_ballot st
    else st
  | Process.Fd { payload = Act.Pset _; _ } -> st

let output st =
  match Process.Outbox.peek st.outbox with
  | Some o -> Some o
  | None -> (
    match st.decided with
    | Some v when not st.decide_emitted -> Some (Process.Decide v)
    | Some _ | None -> None)

let after_output st = function
  | Process.Send _ -> { st with outbox = Process.Outbox.pop st.outbox }
  | Process.Decide _ -> { st with decide_emitted = true }
  | Process.Internal _ -> st

let process ~n ~loc =
  Process.automaton ~name:"synod" ~loc ~fd_names:[ detector_name ]
    { Process.init = init ~n ~self:loc; handle; output; after_output }

let processes ~n =
  List.map (fun i -> Component.C (process ~n ~loc:i)) (Loc.universe ~n)

let net ~n ?values ?detector ~crashable () =
  let detector =
    match detector with
    | Some d -> d
    | None ->
      Component.C (Fd_bridge.lift_leader ~detector:detector_name (Afd_automata.fd_omega ~n))
  in
  let environment =
    match values with
    | Some vs -> Environment.scripted ~values:vs
    | None -> Environment.consensus ~n
  in
  Net.assemble ~n ~detectors:[ detector ] ~environment ~crashable
    ~processes:(processes ~n) ()
