(** k-set agreement using Ψk — the set-agreement-oriented detectors of
    the paper's catalog put to work.

    Each location proposes its own ID (location-valued proposals make
    the k-bound meaningful: binary k-set agreement is trivial for
    k ≥ 2).  The protocol runs [k] {e parallel Synod instances} over
    location values; the proposer role of instance [j] belongs, at each
    location, to the [j]-th smallest member of the Ψk output there.  A
    location decides the first value any instance chooses.

    - {e k-agreement}: each Synod instance is safe, so at most [k]
      distinct values are decided;
    - {e validity}: instance values originate from instance proposers'
      own IDs or recovered acceptances thereof;
    - {e termination} (f < n/2, majority quorums per instance): Ψk
      eventually shows one common set [K] at all live locations, so
      each instance's proposer role stabilizes; at least the instance
      led by a live member of [K] decides, and its decision is
      broadcast.

    This realizes, executably, why Ψk-class detectors are "set
    agreement oriented" [22, 23]. *)

open Afd_ioa
open Afd_system

val detector_name : string
(** "Psi". *)

type st

val process : n:int -> k:int -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
val processes : n:int -> k:int -> Act.t Component.t list

val net : n:int -> k:int -> crashable:Loc.Set.t -> Net.t

(** {1 Specification monitors} *)

val decisions : Act.t list -> (Loc.t * Loc.t) list
(** (location, decided ID) of every [Decide_id] event. *)

val k_agreement : k:int -> Act.t list -> Afd_core.Verdict.t
(** At most [k] distinct decided values. *)

val validity : n:int -> Act.t list -> Afd_core.Verdict.t
(** Every decided ID is the ID of some location (the proposers propose
    their own IDs). *)

val integrity : Act.t list -> Afd_core.Verdict.t
(** At most one decision per location, none after its crash. *)

val termination : n:int -> Act.t list -> Afd_core.Verdict.t

val check : n:int -> k:int -> Act.t list -> Afd_core.Verdict.t
