(** Ballot-based consensus using the leader oracle Ω (the Synod
    protocol of Paxos, with Ω as the leader-election module).

    Every location plays all three roles:
    - {e proposer}: when Ω names it and it is idle (or preempted), it
      starts a fresh ballot [b] (ballots at location [i] are the
      integers congruent to [i] mod [n], so ballots never collide),
      collects promises from a majority, picks the value of the
      highest-ballot acceptance among them (or its own proposal), and
      broadcasts accept requests;
    - {e acceptor}: standard promise/accept with ballot comparisons;
    - {e learner}: decides when a majority of acceptors have accepted
      one ballot.

    Safety (agreement, validity) holds under any scheduling and any
    crashes; termination needs a live majority ([f < n/2]) and relies
    on Ω eventually electing one live leader: its continual outputs
    retrigger preempted proposers, so ballots stop colliding once the
    leader stabilizes.  This is the executable content of Section 9's
    claim that a sufficiently strong AFD circumvents FLP. *)

open Afd_ioa
open Afd_system

val detector_name : string
(** "Omega". *)

type st

val ballot : st -> int
val has_decided : st -> bool
val promised : st -> int
val accepted : st -> (int * bool) option

val process : n:int -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
val processes : n:int -> Act.t Component.t list

val net :
  n:int ->
  ?values:bool list ->
  ?detector:Act.t Component.t ->
  crashable:Loc.Set.t ->
  unit ->
  Net.t
(** Full system.  Default detector is Algorithm 1's FD-Ω lifted into
    the system; pass [detector] to substitute another Ω source (e.g.
    the ◇P→Ω transformer pipeline of the Via_reduction module). *)
