open Afd_ioa
open Afd_core
open Afd_system

let detector_name = "P"
let sf_tag = "deliver_SF"

type delivery = Value of bool | Sender_faulty

let deliveries t =
  List.filter_map
    (function
      | Act.Decide { at; v } -> Some (at, Value v)
      | Act.Step { at; tag } when String.equal tag sf_tag -> Some (at, Sender_faulty)
      | _ -> None)
    t

let crashes_before t =
  let crashed = ref Loc.Set.empty in
  List.map
    (fun a ->
      let before = !crashed in
      (match a with Act.Crash i -> crashed := Loc.Set.add i !crashed | _ -> ());
      (a, before))
    t

let faulty t =
  List.fold_left
    (fun acc a -> match a with Act.Crash i -> Loc.Set.add i acc | _ -> acc)
    Loc.Set.empty t

let integrity t =
  let seen = Hashtbl.create 8 in
  let dup =
    List.fold_left
      (fun acc (i, _) ->
        if Hashtbl.mem seen i then
          Verdict.(acc &&& Violated (Printf.sprintf "two deliveries at %s" (Loc.to_string i)))
        else begin
          Hashtbl.add seen i ();
          acc
        end)
      Verdict.Sat (deliveries t)
  in
  let after_crash =
    List.fold_left
      (fun acc (a, crashed) ->
        let bad at =
          if Loc.Set.mem at crashed then
            Verdict.(
              acc &&& Violated (Printf.sprintf "delivery at %s after its crash" (Loc.to_string at)))
          else acc
        in
        match a with
        | Act.Decide { at; _ } -> bad at
        | Act.Step { at; tag } when String.equal tag sf_tag -> bad at
        | _ -> acc)
      Verdict.Sat (crashes_before t)
  in
  Verdict.(dup &&& after_crash)

let validity ~sender t =
  if Loc.Set.mem sender (faulty t) then Verdict.Sat
  else
    let sent = List.assoc_opt sender (Net.proposals t) in
    List.fold_left
      (fun acc (i, d) ->
        match (d, sent) with
        | Value v, Some v' when Bool.equal v v' -> acc
        | Value v, Some v' ->
          Verdict.(
            acc
            &&& Violated
                  (Printf.sprintf "%s delivered %b but the live sender broadcast %b"
                     (Loc.to_string i) v v'))
        | Value _, None ->
          Verdict.(
            acc
            &&& Violated (Printf.sprintf "%s delivered a value nobody broadcast" (Loc.to_string i)))
        | Sender_faulty, _ ->
          Verdict.(
            acc
            &&& Violated (Printf.sprintf "%s delivered SF although the sender is live" (Loc.to_string i)))
      )
      Verdict.Sat (deliveries t)

let agreement t =
  let values =
    List.filter_map (function _, Value v -> Some v | _, Sender_faulty -> None) (deliveries t)
  in
  match values with
  | [] -> Verdict.Sat
  | v0 :: rest ->
    if List.for_all (Bool.equal v0) rest then Verdict.Sat
    else Verdict.Violated "two different non-SF values delivered"

let termination ~n t =
  let delivered =
    List.fold_left (fun acc (i, _) -> Loc.Set.add i acc) Loc.Set.empty (deliveries t)
  in
  let live = Loc.Set.diff (Loc.set_of_universe ~n) (faulty t) in
  Loc.Set.fold
    (fun i acc ->
      if Loc.Set.mem i delivered then acc
      else
        Verdict.(
          acc &&& Undecided (Printf.sprintf "live %s has not delivered yet" (Loc.to_string i))))
    live Verdict.Sat

let check ~n ~sender t =
  Verdict.(integrity t &&& validity ~sender t &&& agreement t &&& termination ~n t)

(* --- algorithm --- *)

type st = {
  n : int;
  sender : Loc.t;
  self : Loc.t;
  value : bool option;
  suspects : Loc.Set.t;
  delivered : bool;
  outbox : Process.Outbox.t;
}

let adopt st v =
  if st.value <> None then st
  else
    { st with
      value = Some v;
      outbox = Process.Outbox.broadcast st.outbox ~n:st.n ~self:st.self (Msg.Decided { v });
    }

let handle st = function
  | Process.Propose v -> if Loc.equal st.self st.sender then adopt st v else st
  | Process.Receive { msg = Msg.Decided { v }; _ } -> adopt st v
  | Process.Receive _ -> st
  | Process.Fd { payload = Act.Pset s; _ } -> { st with suspects = s }
  | Process.Fd { payload = Act.Pleader _; _ } -> st

let output st =
  match Process.Outbox.peek st.outbox with
  | Some o -> Some o
  | None ->
    if st.delivered then None
    else (
      match st.value with
      | Some v -> Some (Process.Decide v)
      | None ->
        if Loc.Set.mem st.sender st.suspects then Some (Process.Internal sf_tag) else None)

let after_output st = function
  | Process.Send _ -> { st with outbox = Process.Outbox.pop st.outbox }
  | Process.Decide _ | Process.Internal _ -> { st with delivered = true }

let process ~n ~sender ~loc =
  Process.automaton ~name:"trb" ~loc ~fd_names:[ detector_name ]
    { Process.init =
        { n;
          sender;
          self = loc;
          value = None;
          suspects = Loc.Set.empty;
          delivered = false;
          outbox = Process.Outbox.empty;
        };
      handle;
      output;
      after_output;
    }

let net ~n ~sender ~value ~crashable =
  let detector =
    Fd_bridge.lift_set ~detector:detector_name (Afd_automata.fd_perfect ~n)
  in
  let processes =
    List.map (fun i -> Component.C (process ~n ~sender ~loc:i)) (Loc.universe ~n)
  in
  Net.assemble ~n
    ~detectors:[ Component.C detector ]
    ~environment:[ Component.C (Environment.scripted_at sender ~value) ]
    ~crashable ~processes ()
