(** The participant failure detector (Section 10.1) — a {e query-based}
    detector that is representative for consensus, in contrast with
    Theorem 21's result that no AFD is.

    The participant detector answers every query, at every location and
    at all times, with one fixed location ID, and guarantees that the
    process with that ID has queried at least once before any answer is
    issued.  Because queries are {e inputs from the processes}, the
    detector can leak information beyond crashes — here, "that process
    reached its query point" — which is precisely what the paper's
    unilateral AFD interface forbids.

    Both directions of representativeness are implemented:
    - {!consensus_net}: solving consensus {e using} the detector — each
      process broadcasts its proposal {e before} querying, so the
      answered ID's proposal is already in the channels; everyone waits
      for it and decides it;
    - {!extraction_net}: solving the detector {e using} a black-box
      consensus (the flooding algorithm): on its first query a location
      proposes its own ID, and every query is answered with the decided
      ID.  (Location IDs ride on binary consensus, so this direction is
      exercised with [n = 2]; the construction generalizes with
      multi-valued consensus.) *)

open Afd_ioa
open Afd_core
open Afd_system

val detector_name : string
(** "participant". *)

val queries : Act.t list -> (int * Loc.t) list
(** (position, location) of every query event. *)

val responses : Act.t list -> (int * Loc.t * Loc.t) list
(** (position, location, answered ID) of every response event. *)

val check : n:int -> Act.t list -> Verdict.t
(** The participant-detector specification on a finite trace:
    (1) all responses carry one common ID [l];
    (2) [l]'s first query precedes every response;
    (3) no response at a location after its crash;
    liveness: every live location that queried gets at least one
    response ([Undecided] while missing). *)

val automaton : n:int -> (Loc.t option * Loc.t list, Act.t) Automaton.t
(** The detector automaton itself: latches the first querier as the
    answer, answers queries in FIFO order. *)

(** {1 Direction 1: consensus using the participant detector} *)

val consensus_net : n:int -> values:bool list -> crashable:Loc.Set.t -> Net.t

(** {1 Direction 2: the participant detector using consensus} *)

val extraction_net : crashable:Loc.Set.t -> Net.t
(** [n = 2]: flooding-consensus processes (over P), front-ends
    translating queries to proposals and decisions to responses, and a
    query-environment that queries once per location. *)
