open Afd_ioa
open Afd_core
open Afd_system

let evp_name = "EvP"

let default_noise ~n =
  Afd_automata.noise_of_list
    (List.map (fun i -> (i, Loc.Set.singleton ((i + 1) mod n))) (Loc.universe ~n))

let leader_of_suspects ~n loc = function
  | Act.Pset s -> (
    match Loc.min_not_in ~n (fun j -> Loc.Set.mem j s) with
    | Some l -> Act.Pleader l
    | None -> Act.Pleader loc)
  | Act.Pleader l -> Act.Pleader l

let net ~n ?values ?noise ~crashable () =
  let noise = match noise with Some x -> x | None -> default_noise ~n in
  let evp =
    Fd_bridge.lift_set ~detector:evp_name (Afd_automata.fd_ev_perfect_noisy ~n ~noise)
  in
  let transformers =
    List.map
      (fun i ->
        Component.C
          (Fd_bridge.transformer ~src:evp_name ~dst:Synod_omega.detector_name ~loc:i
             ~f:(leader_of_suspects ~n)))
      (Loc.universe ~n)
  in
  let environment =
    match values with
    | Some vs -> Environment.scripted ~values:vs
    | None -> Environment.consensus ~n
  in
  Net.assemble ~n
    ~detectors:[ Component.C evp ]
    ~environment ~extras:transformers ~crashable
    ~processes:(Synod_omega.processes ~n) ()
