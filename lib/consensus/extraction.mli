(** The Theorem 21 experiment: consensus (a bounded problem) has no
    representative AFD.

    The proof (Section 7.4) finds a quiescent execution of the
    composition of the witness automaton U with any candidate
    extraction algorithm A_P^D, then shows the extraction must keep
    producing valid detector outputs while receiving no further
    information — so two fault patterns that diverge only after
    quiescence are indistinguishable to it, contradicting the detector
    spec on one of them.

    Here the argument is made executable for {e local deterministic}
    extraction candidates: a candidate maps a location's observation
    history (its proposals and decisions — everything a solution to
    consensus shows it) to a detector output.  We run consensus to
    quiescence under two fault patterns that agree before quiescence
    and differ after, graft the candidate's outputs into both runs, and
    check the target AFD spec: because the observation histories
    coincide, the grafted output streams coincide, and at most one run
    can satisfy the spec. *)

open Afd_ioa
open Afd_core

type observation =
  | Oproposed of bool  (** the location's own proposal *)
  | Odecided of bool  (** the location's own decision *)

type candidate = Loc.t -> observation list -> Loc.Set.t option
(** A local deterministic extraction strategy: current (set-valued)
    detector output at a location from that location's observation
    history; [None] = no output yet. *)

val echo_decision : candidate
(** Suspect nobody until the location decides, then suspect everyone
    whose... — concretely: output [{}] before deciding and keep
    outputting [{}] after (it has no way to learn more).  The simplest
    honest candidate. *)

type result = {
  observations_equal : bool;
      (** the live observer's histories coincide across the two runs *)
  verdict_a : Verdict.t;  (** target spec on the grafted pattern-A run *)
  verdict_b : Verdict.t;
  refuted : bool;  (** at least one verdict is not [Sat] *)
}

val run :
  n:int ->
  target:(Loc.Set.t Afd.spec) ->
  candidate:candidate ->
  late_crash:Loc.t ->
  seed:int ->
  steps:int ->
  result
(** Run flooding consensus (f = 1) to quiescence twice: pattern A
    crashes nobody; pattern B crashes [late_crash] {e after} every
    location has decided and all channels have drained.  Graft the
    candidate's outputs (sampled after every observation and repeated
    at the end — the limit extension) into both consensus traces and
    check [target] on both. *)

val run_with :
  retention:Afd_ioa.Scheduler.retention ->
  n:int ->
  target:(Loc.Set.t Afd.spec) ->
  candidate:candidate ->
  late_crash:Loc.t ->
  seed:int ->
  steps:int ->
  result
(** {!run} under an explicit retention policy (the result is
    retention-invariant). *)
