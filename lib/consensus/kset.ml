open Afd_ioa
open Afd_system
open Afd_core

let detector_name = "Psi"

(* --- per-instance Synod state over location values --- *)

type phase = Idle | Phase1 | Phase2

type inst_st = {
  ballot : int;
  phase : phase;
  promises : (Loc.t * (int * Loc.t) option) list;
  max_seen : int;
  promised : int;
  accepted : (int * Loc.t) option;
  learned : ((int * Loc.t) * Loc.Set.t) list;
  chosen : Loc.t option;
}

let inst_init =
  { ballot = -1;
    phase = Idle;
    promises = [];
    max_seen = -1;
    promised = -1;
    accepted = None;
    learned = [];
    chosen = None;
  }

module Int_map = Map.Make (Int)

type st = {
  n : int;
  k : int;
  self : Loc.t;
  leaders : Loc.t list;  (* latest Psi_k output, sorted ascending *)
  insts : inst_st Int_map.t;
  decided : Loc.t option;
  decide_emitted : bool;
  outbox : Process.Outbox.t;
}

let init ~n ~k ~self =
  { n;
    k;
    self;
    leaders = [];
    insts = Int_map.empty;
    decided = None;
    decide_emitted = false;
    outbox = Process.Outbox.empty;
  }

let inst_of st j =
  match Int_map.find_opt j st.insts with Some s -> s | None -> inst_init

let set_inst st j is = { st with insts = Int_map.add j is st.insts }

let majority st = (st.n / 2) + 1

let send st dst msg =
  { st with outbox = Process.Outbox.push st.outbox (Process.Send { dst; msg }) }

let leads st j =
  (* does this location hold the proposer role of instance j? *)
  match List.nth_opt st.leaders j with
  | Some l -> Loc.equal l st.self
  | None -> false

let next_ballot st is =
  let floor = max is.max_seen is.ballot in
  (((floor / st.n) + 1) * st.n) + st.self

let rec deliver st ~src msg =
  match msg with
  | Msg.Kprepare { inst; bal } ->
    let is = inst_of st inst in
    let is = { is with max_seen = max is.max_seen bal } in
    if bal > is.promised then
      respond
        (set_inst st inst { is with promised = bal })
        ~dst:src
        (Msg.Kpromise { inst; bal; accepted = is.accepted })
    else respond (set_inst st inst is) ~dst:src (Msg.Knack { inst; bal })
  | Msg.Kpromise { inst; bal; accepted } ->
    let is = inst_of st inst in
    let is = { is with max_seen = max is.max_seen bal } in
    if is.phase = Phase1 && bal = is.ballot then begin
      let is =
        if List.exists (fun (j, _) -> Loc.equal j src) is.promises then is
        else { is with promises = (src, accepted) :: is.promises }
      in
      if List.length is.promises >= majority st then
        let v =
          let best =
            List.fold_left
              (fun best (_, acc) ->
                match (best, acc) with
                | None, x -> x
                | Some _, None -> best
                | Some (b1, _), Some (b2, _) -> if b2 > b1 then acc else best)
              None is.promises
          in
          match best with Some (_, v) -> v | None -> st.self
        in
        broadcast
          (set_inst st inst { is with phase = Phase2 })
          (Msg.Kaccept { inst; bal = is.ballot; v })
      else set_inst st inst is
    end
    else set_inst st inst is
  | Msg.Knack { inst; bal } ->
    let is = inst_of st inst in
    let is = { is with max_seen = max is.max_seen bal } in
    if bal = is.ballot && is.phase <> Idle then set_inst st inst { is with phase = Idle }
    else set_inst st inst is
  | Msg.Kaccept { inst; bal; v } ->
    let is = inst_of st inst in
    let is = { is with max_seen = max is.max_seen bal } in
    if bal >= is.promised then
      broadcast
        (set_inst st inst { is with promised = bal; accepted = Some (bal, v) })
        (Msg.Kaccepted { inst; bal; v })
    else respond (set_inst st inst is) ~dst:src (Msg.Knack { inst; bal })
  | Msg.Kaccepted { inst; bal; v } ->
    let is = inst_of st inst in
    let key = (bal, v) in
    let voters =
      match List.assoc_opt key is.learned with
      | None -> Loc.Set.singleton src
      | Some s -> Loc.Set.add src s
    in
    let is = { is with learned = (key, voters) :: List.remove_assoc key is.learned } in
    let is =
      if Loc.Set.cardinal voters >= majority st && is.chosen = None then
        { is with chosen = Some v }
      else is
    in
    let st = set_inst st inst is in
    if st.decided = None && is.chosen <> None then { st with decided = is.chosen }
    else st
  | Msg.Flood _ | Msg.Prepare _ | Msg.Promise _ | Msg.Nack _ | Msg.Accept _
  | Msg.Accepted _ | Msg.Decided _ | Msg.Ping _ | Msg.Fd_relay _ -> st

and respond st ~dst msg =
  if Loc.equal dst st.self then deliver st ~src:st.self msg else send st dst msg

and broadcast st msg =
  let st =
    { st with outbox = Process.Outbox.broadcast st.outbox ~n:st.n ~self:st.self msg }
  in
  deliver st ~src:st.self msg

let start_ballot st j =
  let is = inst_of st j in
  let b = next_ballot st is in
  let st = set_inst st j { is with ballot = b; phase = Phase1; promises = [] } in
  broadcast st (Msg.Kprepare { inst = j; bal = b })

(* On every Psi_k output: refresh the proposer roles; (re)start any
   instance this location now leads that is idle or preempted. *)
let on_leaders st set =
  let leaders = Loc.Set.elements set in
  let st = { st with leaders } in
  if st.decided <> None then st
  else
    List.fold_left
      (fun st j ->
        if leads st j then
          let is = inst_of st j in
          if is.phase = Idle || is.max_seen > is.ballot then start_ballot st j else st
        else st)
      st
      (List.init st.k Fun.id)

let handle st = function
  | Process.Receive { src; msg } -> deliver st ~src msg
  | Process.Fd { detector; payload = Act.Pset set }
    when String.equal detector detector_name ->
    on_leaders st set
  | Process.Fd _ | Process.Propose _ -> st

let output st =
  match Process.Outbox.peek st.outbox with
  | Some o -> Some o
  | None -> (
    match st.decided with
    | Some _ when not st.decide_emitted -> Some (Process.Internal "decide_id")
    | Some _ | None -> None)

let after_output st = function
  | Process.Send _ -> { st with outbox = Process.Outbox.pop st.outbox }
  | Process.Internal _ -> { st with decide_emitted = true }
  | Process.Decide _ -> st

(* The Process glue has no location-valued decide, so the process is
   wrapped: its Internal "decide_id" step is renamed to the Decide_id
   action carrying the chosen value.  Renaming needs the value, which
   lives in the state, so we build the automaton directly. *)
let process ~n ~k ~loc =
  let inner =
    Process.automaton ~name:"kset" ~loc ~fd_names:[ detector_name ]
      { Process.init = init ~n ~k ~self:loc; handle; output; after_output }
  in
  let reveal act (st, _failed) =
    (* translate the internal decide step into the visible Decide_id *)
    match act with
    | Act.Step { at; tag = "decide_id" } when Loc.equal at loc -> (
      match st.decided with
      | Some v -> Act.Decide_id { at = loc; v }
      | None -> act)
    | other -> other
  in
  let hide_back = function
    | Act.Decide_id { at; _ } when Loc.equal at loc ->
      Act.Step { at = loc; tag = "decide_id" }
    | other -> other
  in
  let kind = function
    | Act.Decide_id { at; _ } when Loc.equal at loc -> Some Automaton.Output
    | Act.Step { at; tag = "decide_id" } when Loc.equal at loc -> None
    | other -> inner.Automaton.kind other
  in
  let step s act =
    match act with
    (* the internal decide step is renamed away: only its Decide_id
       alias is in the signature, so the raw action must be rejected *)
    | Act.Step { at; tag = "decide_id" } when Loc.equal at loc -> None
    | _ -> inner.Automaton.step s (hide_back act)
  in
  let task t =
    { Automaton.task_name = t.Automaton.task_name;
      fair = t.Automaton.fair;
      enabled = (fun s -> Option.map (fun a -> reveal a s) (t.Automaton.enabled s));
    }
  in
  { Automaton.name = inner.Automaton.name;
    kind;
    start = inner.Automaton.start;
    step;
    tasks = List.map task inner.Automaton.tasks;
  }

let processes ~n ~k =
  List.map (fun i -> Component.C (process ~n ~k ~loc:i)) (Loc.universe ~n)

let net ~n ~k ~crashable =
  let psi = Fd_bridge.lift_set ~detector:detector_name (Afd_automata.fd_psi_k ~n ~k) in
  Net.assemble ~n
    ~detectors:[ Component.C psi ]
    ~crashable ~processes:(processes ~n ~k) ()

(* --- monitors --- *)

let decisions t =
  List.filter_map (function Act.Decide_id { at; v } -> Some (at, v) | _ -> None) t

let k_agreement ~k t =
  let values =
    List.sort_uniq Loc.compare (List.map snd (decisions t))
  in
  if List.length values <= k then Verdict.Sat
  else
    Verdict.Violated
      (Printf.sprintf "%d distinct values decided, k = %d" (List.length values) k)

let validity ~n t =
  List.fold_left
    (fun acc (i, v) ->
      if v >= 0 && v < n then acc
      else
        Verdict.(
          acc
          &&& Violated
                (Printf.sprintf "%s decided %s, not a location ID" (Loc.to_string i)
                   (Loc.to_string v))))
    Verdict.Sat (decisions t)

let integrity t =
  let crashed = ref Loc.Set.empty in
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc a ->
      match a with
      | Act.Crash i ->
        crashed := Loc.Set.add i !crashed;
        acc
      | Act.Decide_id { at; _ } ->
        let dup =
          if Hashtbl.mem seen at then
            Verdict.Violated (Printf.sprintf "two decisions at %s" (Loc.to_string at))
          else Verdict.Sat
        in
        Hashtbl.replace seen at ();
        let after =
          if Loc.Set.mem at !crashed then
            Verdict.Violated
              (Printf.sprintf "decision at %s after its crash" (Loc.to_string at))
          else Verdict.Sat
        in
        Verdict.(acc &&& dup &&& after)
      | _ -> acc)
    Verdict.Sat t

let termination ~n t =
  let faulty =
    List.fold_left
      (fun acc a -> match a with Act.Crash i -> Loc.Set.add i acc | _ -> acc)
      Loc.Set.empty t
  in
  let decided =
    List.fold_left (fun acc (i, _) -> Loc.Set.add i acc) Loc.Set.empty (decisions t)
  in
  Loc.Set.fold
    (fun i acc ->
      if Loc.Set.mem i decided then acc
      else
        Verdict.(
          acc
          &&& Undecided (Printf.sprintf "live %s has not decided yet" (Loc.to_string i))))
    (Loc.Set.diff (Loc.set_of_universe ~n) faulty)
    Verdict.Sat

let check ~n ~k t =
  Verdict.(k_agreement ~k t &&& validity ~n t &&& integrity t &&& termination ~n t)
