open Afd_ioa
open Afd_system

type state = {
  chosen : bool option;
  crashed : Loc.Set.t;
  decided_at : Loc.Set.t;
}

let automaton ~n =
  let kind = function
    | Act.Crash _ -> Some Automaton.Input
    | Act.Propose _ -> Some Automaton.Input
    | Act.Decide _ -> Some Automaton.Output
    | _ -> None
  in
  let can_decide st i =
    match st.chosen with
    | Some v
      when (not (Loc.Set.mem i st.crashed)) && not (Loc.Set.mem i st.decided_at) ->
      Some v
    | _ -> None
  in
  let step st = function
    | Act.Crash i -> Some { st with crashed = Loc.Set.add i st.crashed }
    | Act.Propose { v; _ } ->
      Some (if st.chosen = None then { st with chosen = Some v } else st)
    | Act.Decide { at; v } ->
      if can_decide st at = Some v then
        Some { st with decided_at = Loc.Set.add at st.decided_at }
      else None
    | _ -> None
  in
  let task i =
    { Automaton.task_name = Printf.sprintf "decide_%s" (Loc.to_string i);
      fair = true;
      enabled =
        (fun st -> Option.map (fun v -> Act.Decide { at = i; v }) (can_decide st i));
    }
  in
  { Automaton.name = "U-consensus";
    kind;
    start = { chosen = None; crashed = Loc.Set.empty; decided_at = Loc.Set.empty };
    step;
    tasks = List.map task (Loc.universe ~n);
  }

let output_bound ~n = n

let sample_traces_with ~retention ~n ~seeds ~steps =
  List.map
    (fun seed ->
      let crash_at = if seed mod 2 = 0 then [ (4, seed mod n) ] else [] in
      let crashable =
        List.fold_left (fun acc (_, i) -> Loc.Set.add i acc) Loc.Set.empty crash_at
      in
      let comp =
        Composition.make ~name:"witness-system"
          (Component.C (automaton ~n)
          :: Component.C (Crash.automaton ~n ~crashable)
          :: Environment.consensus ~n)
      in
      let cfg =
        { Scheduler.policy = Scheduler.Random seed;
          max_steps = steps;
          stop_when_quiescent = true;
          forced = Crash.forces crash_at;
        }
      in
      List.map snd (Scheduler.run ~retention comp cfg).Scheduler.fired)
    seeds

let sample_traces ~n ~seeds ~steps =
  sample_traces_with ~retention:Scheduler.Trace_only ~n ~seeds ~steps
