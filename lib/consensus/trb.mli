(** Terminating Reliable Broadcast (TRB) — a second {e bounded} crash
    problem (Section 7.3 names terminating reliable broadcast among the
    bounded problems).

    A designated sender broadcasts one binary value; every location
    must eventually deliver either that value or the failure indicator
    SF ("sender faulty").  Clauses:
    - {e integrity}: each location delivers at most once, and never
      after crashing;
    - {e validity}: if the sender is live, every live location delivers
      the sender's value (in particular not SF);
    - {e agreement}: if any location delivers a value [v <> SF], no
      location delivers a different non-SF value;
    - {e termination}: every live location eventually delivers.

    (This is the {e weak} variant in which a crashed sender may yield a
    mix of SF and value deliveries; the uniform variant is equivalent
    to consensus and is covered by the consensus library.)

    The algorithm uses P exactly as folklore prescribes: adopt and
    relay the first copy of the sender's value; deliver it once
    relaying is done; deliver SF when P suspects the sender before any
    copy arrived.  P's strong accuracy makes SF sound (a live sender's
    value always arrives) and its strong completeness makes the wait
    finite.

    Deliveries are encoded as [Act.Decide] events and the broadcast
    value as the sender's [Act.Propose]; SF is encoded as a [Step]
    action tagged ["deliver_SF"] so that the problem's alphabet stays
    within [Act.t] (documented substitution). *)

open Afd_ioa
open Afd_core
open Afd_system

val detector_name : string

val sf_tag : string
(** The [Act.Step] tag representing the SF delivery. *)

type delivery = Value of bool | Sender_faulty

val deliveries : Act.t list -> (Loc.t * delivery) list

(** {1 Specification monitors} *)

val integrity : Act.t list -> Verdict.t
val validity : sender:Loc.t -> Act.t list -> Verdict.t
val agreement : Act.t list -> Verdict.t
val termination : n:int -> Act.t list -> Verdict.t
val check : n:int -> sender:Loc.t -> Act.t list -> Verdict.t

(** {1 Algorithm} *)

type st

val process : n:int -> sender:Loc.t -> loc:Loc.t -> (st * bool, Act.t) Automaton.t
val net : n:int -> sender:Loc.t -> value:bool -> crashable:Loc.Set.t -> Net.t
(** Processes + channels + crash + FD-P + a scripted environment giving
    the sender its input. *)
