(** The bounded-problem witness automaton U for consensus
    (Section 7.3).

    [U] is a single (non-distributed) automaton solving binary
    consensus: it latches the first proposed value and, at each
    not-yet-crashed location that has not decided, offers a decide
    output of the latched value.  It is {e crash independent} (crashes
    only suppress future outputs; deleting crash events from any finite
    trace leaves a trace of U) and has {e bounded length} (at most [n]
    decide events) — certifying that consensus is a bounded problem,
    the hypothesis of Theorem 21. *)

open Afd_ioa
open Afd_system

type state

val automaton : n:int -> (state, Act.t) Automaton.t

val output_bound : n:int -> int
(** The bound [b] of the bounded-length property: [n]. *)

val sample_traces : n:int -> seeds:int list -> steps:int -> Act.t list list
(** Fair traces of U composed with the crash automaton and E_C, for
    feeding the {!Afd_core.Bounded_problem} checkers. *)

val sample_traces_with :
  retention:Afd_ioa.Scheduler.retention ->
  n:int -> seeds:int list -> steps:int -> Act.t list list
(** {!sample_traces} under an explicit retention policy (traces are
    retention-invariant). *)
