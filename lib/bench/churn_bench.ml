(* Churn-simulation rows (CN) for the experiment matrix.

   One cell = one seeded run of the mega discrete-event engine.  The
   engine is single-threaded and fully determined by its cfg, so the
   rendered row is byte-identical at any --jobs; the derived cell seed
   feeds cfg.seed, which keys every random stream inside the engine
   (delays, churn, protocol jitter) via Scheduler.Seed.derive. *)

open Afd_core
module R = Afd_runner
module M = Afd_mega

let section = "CN  Churn simulation (event calendar, sparse state, 10^3..10^4 procs)"

let row ~id ~label ~procs ~events ~churn_rate ~topology ~detector =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed ~faults:_ ->
      let cfg = M.Engine.cfg ~procs ~events ~churn_rate ~topology ~detector ~seed () in
      let r = M.Engine.run cfg in
      let verdict =
        if M.Engine.ok r then Verdict.Sat
        else
          match r.M.Engine.monitor_verdict with
          | Verdict.Violated _ as v -> v
          | _ -> Verdict.Violated "faults injected but none detected"
      in
      R.Metrics.outcome ~steps:r.M.Engine.processed ~quiescent:false
        ~detail:(M.Engine.deterministic_summary r)
        ~clauses:r.M.Engine.monitor_clauses verdict)

let entries () =
  [ row ~id:"CN.hb-ring" ~label:"CN heartbeat/ring 4k procs, churn 5"
      ~procs:4_000 ~events:150_000 ~churn_rate:5.0 ~topology:(M.Topology.Ring 2)
      ~detector:"hb-pc";
    row ~id:"CN.hb-grid" ~label:"CN heartbeat/grid 4k procs, churn 20"
      ~procs:4_000 ~events:150_000 ~churn_rate:20.0 ~topology:M.Topology.Grid
      ~detector:"hb-pc";
    row ~id:"CN.vcube-hypercube" ~label:"CN vcube/hypercube 4k procs, churn 5"
      ~procs:4_000 ~events:150_000 ~churn_rate:5.0 ~topology:M.Topology.Hypercube
      ~detector:"vcube";
    row ~id:"CN.vcube-quiet" ~label:"CN vcube/hypercube 4k procs, no churn"
      ~procs:4_000 ~events:100_000 ~churn_rate:0.0 ~topology:M.Topology.Hypercube
      ~detector:"vcube";
  ]
