(** The E1-E7 experiment matrix of the bench harness, as a library.

    Exposed so the test suite can run the exact matrix the harness
    runs: the determinism tests compare its verdict tables across
    domain counts, and the retention-equivalence regression re-runs
    every cell under each {!Afd_ioa.Scheduler.retention} policy and
    demands identical (timing-free) results. *)

module Check = Check
(** Online/offline differential checking of the detector catalog (the
    [afd_sim check] subcommand's matrix). *)

module Explore_bench = Explore_bench
(** Exploration-throughput rows (MX) appended to {!matrix}. *)

module Pspace_bench = Pspace_bench
(** Parallel-exploration rows (PX) appended to {!matrix}: the
    domain-sharded explorer differential-gated against MX's sequential
    one at 1/2/4/8 domains, POR off and on. *)

module Cspace_bench = Cspace_bench
(** Compiled-exploration rows (CX) appended to {!matrix}: the packed
    Cspace explorer differential-gated against the boxed sequential
    one at 1/2/4 domains, POR off and on. *)

module Live_bench = Live_bench
(** Liveness model-checking rows (ML) appended to {!matrix}. *)

module Churn_bench = Churn_bench
(** Churn-simulation rows (CN) appended to {!matrix}: the mega
    discrete-event engine under the seeded churn adversary. *)

module Symm_bench = Symm_bench
(** Orbit-reduction rows (SY) appended to {!matrix}: quotiented model
    checking differential against unreduced, plus cutoff ladders. *)

val verdict_str : Afd_core.Verdict.t -> string
(** ["sat"], ["VIOLATED: ..."] or ["undecided: ..."]. *)

val ok_str : ('a, string) result -> string
(** ["ok"] or ["FAIL: ..."]. *)

val matrix :
  ?retention:Afd_ioa.Scheduler.retention ->
  unit ->
  Afd_runner.Matrix.entry list
(** The 25 entries of E1-E7, plus the MX exploration-throughput rows
    ({!Explore_bench}), the PX parallel-exploration rows
    ({!Pspace_bench}), the CX compiled-exploration rows
    ({!Cspace_bench}), the ML liveness model-checking rows
    ({!Live_bench}), the CN churn-simulation rows ({!Churn_bench}) and
    the SY orbit-reduction rows ({!Symm_bench}).  [retention] (default
    {!Afd_ioa.Scheduler.Trace_only}) is threaded into every
    scheduler-driven cell body; verdicts must not depend on it. *)
