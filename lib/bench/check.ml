(* Online/offline differential checking of the detector catalog.

   Each subject pairs a detector automaton with a spec and runs the
   same seeded schedule twice: once streaming events into the spec's
   compiled monitor ([Afd_automata.run_monitored], no trace retained),
   once materializing the full trace and replaying the legacy [check].
   Since [Afd.of_prop] makes [check] the offline replay of the very
   formula the monitor compiles, the two verdicts must agree
   structurally on every subject, every seed, every retention policy —
   that equality is the meta-verdict each matrix cell reports.

   Two subjects are deliberate mismatches of detector and spec
   ([expect_violated]): their cells additionally demand a [Violated]
   verdict with a concrete counterexample prefix index. *)

open Afd_ioa
open Afd_core
module R = Afd_runner
module M = Afd_prop.Monitor

type subject =
  | S : {
      id : string;
      label : string;
      n : int;
      steps : int;
      crash_at : (int * Loc.t) list;
      detector : int -> ('s, 'o Fd_event.t) Automaton.t;
      symm : 's Afd_analysis.Mc.state_symmetry option;
      spec : 'o Afd.spec;
      expect_violated : bool;
    }
      -> subject

let id (S s) = s.id
let expect_violated (S s) = s.expect_violated

type outcome = {
  online : Verdict.t;
  offline : Verdict.t;
  clauses : (string * Verdict.t) list;
  counterexample : int option;
  events : int;
}

let verdict_equal a b =
  match (a, b) with
  | Verdict.Sat, Verdict.Sat -> true
  | Verdict.Violated x, Verdict.Violated y | Verdict.Undecided x, Verdict.Undecided y
    -> String.equal x y
  | _ -> false

let run_subject ?window ~retention ~seed (S s) =
  let m =
    match Afd.monitor ?window s.spec ~n:s.n with
    | Some m -> m
    | None -> invalid_arg ("Check.run_subject: raw spec " ^ s.spec.Afd.name)
  in
  let events = ref 0 in
  let _outcome =
    Afd_automata.run_monitored ~retention
      ~observe:(fun e ->
        incr events;
        M.observe m e)
      ~detector:(s.detector s.n) ~n:s.n ~seed ~crash_at:s.crash_at ~steps:s.steps ()
  in
  let t =
    Afd_automata.generate_trace_with ~retention:Scheduler.Trace_only
      ~detector:(s.detector s.n) ~n:s.n ~seed ~crash_at:s.crash_at ~steps:s.steps
  in
  { online = M.verdict m;
    offline = Afd.check s.spec ~n:s.n t;
    clauses = M.clause_verdicts m;
    counterexample =
      Option.map (fun c -> c.Afd_prop.Counterexample.index) (M.counterexample m);
    events = !events;
  }

(* The truthful automata vs their own specs, plus two deliberate
   mismatches.  [CHK.lying-p] latches a safety violation at a concrete
   event (the noisy ◇P implementation suspects a live location, which
   T_P forbids); [CHK.marabout] fails Marabout's exactness judgement
   (FD-P's pre-crash outputs differ from the final faulty set). *)
let sym_set = Some Afd_analysis.Mc.sym_set

(* Noisy and flip-flop states pair the crash set with an identity-
   dependent component (scripted queues, a toggle).  Declaring that
   component rigid is a {e claim}, not a cheat: when the claim is wrong
   the certification sweep produces a breaking witness and the run
   stays unreduced. *)
let sym_noisy =
  Some Afd_analysis.Mc.(sym_pair sym_set sym_rigid)

let subjects =
  let noise01 = Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ] in
  [ S { id = "CHK.p"; label = "P: FD-P (truthful)"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_perfect ~n); symm = sym_set;
        spec = Perfect.spec; expect_violated = false };
    S { id = "CHK.evp"; label = "EvP: FD-P (noisy)"; n = 3; steps = 150;
        crash_at = [ (11, 2) ];
        detector = (fun n -> Afd_automata.fd_ev_perfect_noisy ~n ~noise:noise01);
        symm = sym_noisy;
        spec = Ev_perfect.spec; expect_violated = false };
    S { id = "CHK.s"; label = "S: FD-P (truthful)"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_perfect ~n); symm = sym_set;
        spec = Strong.spec; expect_violated = false };
    S { id = "CHK.evs"; label = "EvS: FD-P (noisy)"; n = 3; steps = 150;
        crash_at = [ (11, 2) ];
        detector = (fun n -> Afd_automata.fd_ev_perfect_noisy ~n ~noise:noise01);
        symm = sym_noisy;
        spec = Ev_strong.spec; expect_violated = false };
    S { id = "CHK.omega"; label = "Omega: FD-Omega"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_omega ~n); symm = sym_set;
        spec = Omega.spec; expect_violated = false };
    S { id = "CHK.antiomega"; label = "anti-Omega: FD-anti-Omega"; n = 3;
        steps = 150; crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_anti_omega ~n); symm = sym_set;
        spec = Anti_omega.spec; expect_violated = false };
    S { id = "CHK.omega2"; label = "Omega_2: FD-Omega_k"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_omega_k ~n ~k:2); symm = sym_set;
        spec = Omega_k.spec ~k:2; expect_violated = false };
    S { id = "CHK.psi2"; label = "Psi_2: FD-Psi_k"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_psi_k ~n ~k:2); symm = sym_set;
        spec = Psi_k.spec ~k:2; expect_violated = false };
    S { id = "CHK.sigma"; label = "Sigma: FD-Sigma"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_sigma ~n); symm = sym_set;
        spec = Sigma.spec; expect_violated = false };
    S { id = "CHK.dk"; label = "D_2: FD-P (truthful)"; n = 3; steps = 150;
        crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_perfect ~n); symm = sym_set;
        spec = D_k.spec ~k:2; expect_violated = false };
    S { id = "CHK.lying-p"; label = "P vs noisy EvP (broken)"; n = 3;
        steps = 120; crash_at = [];
        detector = (fun n -> Afd_automata.fd_ev_perfect_noisy ~n ~noise:noise01);
        symm = sym_noisy;
        spec = Perfect.spec; expect_violated = true };
    S { id = "CHK.marabout"; label = "Marabout vs FD-P (broken)"; n = 3;
        steps = 150; crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_perfect ~n); symm = sym_set;
        spec = Marabout.spec; expect_violated = true };
  ]

let vstr = function
  | Verdict.Sat -> "sat"
  | Verdict.Violated m -> "VIOLATED: " ^ m
  | Verdict.Undecided m -> "undecided: " ^ m

let section = "CHECK  Online property monitors vs offline trace checks"

let cell ?window ~retention subj ~seed =
  let (S s) = subj in
  let r = run_subject ?window ~retention ~seed subj in
  let agree = verdict_equal r.online r.offline in
  let expected =
    if s.expect_violated then Verdict.is_violated r.online
    else Verdict.is_sat r.online
  in
  let cx =
    match r.counterexample with
    | Some i -> Printf.sprintf "  counterexample@%d" i
    | None -> ""
  in
  let detail = Printf.sprintf "online %s%s" (vstr r.online) cx in
  let verdict =
    if not agree then
      Verdict.Violated
        (Printf.sprintf "online/offline mismatch: online %s, offline %s"
           (vstr r.online) (vstr r.offline))
    else if not expected then
      Verdict.Violated
        (Printf.sprintf "expected %s, got %s"
           (if s.expect_violated then "violated" else "sat")
           (vstr r.online))
    else Verdict.Sat
  in
  R.Metrics.outcome ~steps:r.events ~detail ?counterexample:r.counterexample
    ~clauses:r.clauses verdict

let entry ?window ?(seeds = 3) ~retention subj =
  let (S s) = subj in
  let label =
    if s.expect_violated then s.label ^ " [expect violated]" else s.label
  in
  R.Matrix.entry ~id:s.id ~section ~label ~seeds ~faults:[ s.crash_at ]
    ~show:(R.Matrix.show_detail ~label)
    (fun ~seed ~faults:_ -> cell ?window ~retention subj ~seed)

let matrix ?window ?seeds ?(retention = Scheduler.Window 64) () =
  List.map (entry ?window ?seeds ~retention) subjects

(* --- exhaustive model checking of the same subjects --- *)

type mc_violation = {
  clause : string;
  vkind : string;
  depth : int;
  index : int;
  window : string list;
  reason : string;
  confirmed : bool;
}

type mc_lasso = {
  lclause : string;
  lkind : string;
  ldepth : int;
  lstem : int;
  lcycle : int;
  lreason : string;
  lconfirmed : bool;
}

type mc_result = {
  mc_id : string;
  mc_label : string;
  mc_expect_violated : bool;
  mc_verdict : string;
  mc_exhaustive : bool;
  mc_states : int;
  mc_transitions : int;
  mc_proved : bool;
  mc_safety : string list;
  mc_liveness_proved : string list;
  mc_liveness_skipped : string list;
  mc_violations : mc_violation list;
  mc_lassos : mc_lasso list;
  mc_ok : bool;
  mc_profile : (string * float) list;
  mc_json : string;
}

(* Subjects broken only in the limit: every finite prefix is safe, so
   they cannot join the seeded CHECK matrix (no schedule ever latches a
   violation) — only the fair-cycle pass refutes them. *)
let liveness_subjects =
  [ S { id = "CHK.flipflop"; label = "Omega vs FD-FlipFlop (livelocked leader)";
        n = 3; steps = 150; crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_flip_flop ~n);
        symm = Some Afd_analysis.Mc.(sym_pair sym_set sym_rigid);
        spec = Omega.spec; expect_violated = true };
    S { id = "CHK.silent"; label = "P vs FD-Silent (starved liveness)"; n = 3;
        steps = 150; crash_at = [ (10, 1) ];
        detector = (fun n -> Afd_automata.fd_silent ~n); symm = sym_set;
        spec = Perfect.spec; expect_violated = true };
  ]

let mc_subject ?max_states ?(por = false) ?jobs ?compiled ?(profile = false)
    (S s) =
  let open Afd_analysis in
  let timings = if profile then Some (ref []) else None in
  match
    Mc.check_spec ?max_states ~por ?jobs ?compiled ?timings ~n:s.n s.spec
      ~detector:(s.detector s.n)
  with
  | Error e -> Error e
  | Ok o ->
    let pp_out = s.spec.Afd.pp_out in
    let exhaustive = o.Mc.verdict = Afd_analysis.Space.Exhausted in
    let violations =
      List.map
        (fun v ->
          { clause = v.Mc.clause;
            vkind = (match v.Mc.kind with `Edge -> "edge" | `Judgement -> "judgement");
            depth = v.Mc.depth;
            index = v.Mc.counterexample.Afd_prop.Counterexample.index;
            window =
              List.map
                (fun e -> Fmt.str "%a" (Fd_event.pp pp_out) e)
                v.Mc.counterexample.Afd_prop.Counterexample.window;
            reason = v.Mc.reason;
            confirmed = v.Mc.confirmed;
          })
        o.Mc.violations
    in
    let lassos =
      List.map
        (fun l ->
          { lclause = l.Mc.l_clause;
            lkind = (match l.Mc.l_kind with `Cycle -> "fair-cycle" | `Stop -> "fair-stop");
            ldepth = l.Mc.l_depth;
            lstem = List.length l.Mc.l_stem;
            lcycle = List.length l.Mc.l_cycle;
            lreason = l.Mc.l_reason;
            lconfirmed = l.Mc.l_confirmed;
          })
        o.Mc.lassos
    in
    (* the meta-verdict mirrors the matrix cells: a truthful pairing
       must be proved (safety and liveness), a broken one must yield a
       confirmed violation or a confirmed lasso — and in both cases the
       exploration must actually be exhaustive, or the claim is only
       about a truncated sample.  Under POR liveness is out of scope,
       so only the safety half is demanded. *)
    let ok =
      exhaustive
      &&
      if s.expect_violated then
        (violations <> [] || lassos <> [])
        && List.for_all (fun v -> v.confirmed) violations
        && List.for_all (fun l -> l.lconfirmed) lassos
      else if por then o.Mc.safety_proved
      else o.Mc.proved
    in
    Ok
      { mc_id = s.id;
        mc_label = s.label;
        mc_expect_violated = s.expect_violated;
        mc_verdict = Afd_analysis.Space.verdict_string o.Mc.verdict;
        mc_exhaustive = exhaustive;
        mc_states = o.Mc.states;
        mc_transitions = o.Mc.transitions;
        mc_proved = o.Mc.proved;
        mc_safety = o.Mc.safety_clauses;
        mc_liveness_proved = o.Mc.liveness_proved;
        mc_liveness_skipped = o.Mc.liveness_skipped;
        mc_violations = violations;
        mc_lassos = lassos;
        mc_ok = ok;
        mc_profile = (match timings with None -> [] | Some r -> !r);
        mc_json =
          Mc.outcome_to_json
            ?timings:(Option.map (fun r -> !r) timings)
            ~pp_out o;
      }

let mc_all ?max_states ?(por = false) ?jobs ?compiled ?profile () =
  (* The limit-broken extras are refutable only by the fair-cycle pass,
     which POR disables — under POR they would fail vacuously. *)
  let all = if por then subjects else subjects @ liveness_subjects in
  List.map
    (fun subj ->
      match mc_subject ?max_states ~por ?jobs ?compiled ?profile subj with
      | Ok r -> r
      | Error e ->
        (* every shipped subject is prop-compiled; a raw spec here is a
           wiring bug, surfaced as a failing row rather than an
           exception so the whole table still renders *)
        let (S s) = subj in
        { mc_id = s.id;
          mc_label = s.label;
          mc_expect_violated = s.expect_violated;
          mc_verdict = "error";
          mc_exhaustive = false;
          mc_states = 0;
          mc_transitions = 0;
          mc_proved = false;
          mc_safety = [];
          mc_liveness_proved = [];
          mc_liveness_skipped = [];
          mc_violations = [];
          mc_lassos = [];
          mc_ok = false;
          mc_profile = [];
          mc_json = Printf.sprintf "{\"error\": \"%s\"}" (String.escaped e);
        })
    all

(* --- orbit-quotiented re-verification of the same subjects --- *)

type sy_result = {
  sy_id : string;
  sy_label : string;
  sy_status : string;
  sy_detail : string;
  sy_states : int;
  sy_raw_states : int;
  sy_agree : bool;
  sy_parametric : Afd_analysis.Mc.parametric option;
  sy_ok : bool;
  sy_json : string;
}

let json_escape s = String.concat "" [ "\""; String.escaped s; "\"" ]

let sy_subject ?max_states ?ns (S s) =
  let open Afd_analysis in
  match s.symm with
  | None -> Error "no declared symmetry"
  | Some kit -> (
    match Mc.check_spec ?max_states ~n:s.n s.spec ~detector:(s.detector s.n) with
    | Error e -> Error e
    | Ok raw -> (
      match
        Mc.check_spec ?max_states ~symmetry:kit ~n:s.n s.spec
          ~detector:(s.detector s.n)
      with
      | Error e -> Error e
      | Ok sym ->
        (* The quotient must not change what is {e claimed}: same
           safety verdict, same violated clauses, every witness still
           replay-confirmed.  Depths and windows may differ (a
           quotient-shortest path lifts to a genuine but not
           necessarily shortest run), so they are not compared. *)
        let key v = (v.Mc.clause, v.Mc.confirmed) in
        let keys o = List.sort compare (List.map key o.Mc.violations) in
        let agree =
          raw.Mc.safety_proved = sym.Mc.safety_proved && keys raw = keys sym
        in
        let status, detail =
          match sym.Mc.sym with
          | Mc.Sym_off -> ("off", "")
          | Mc.Sym_quotient c ->
            ( "certified",
              Printf.sprintf "%d reps x %d perms" c.Symm.c_states c.Symm.c_perms )
          | Mc.Sym_breaking w -> ("breaking", Fmt.str "%a" Symm.pp_witness w)
          | Mc.Sym_fallback r -> ("fallback", r)
        in
        let par =
          match sym.Mc.sym with
          | Mc.Sym_quotient _ ->
            Some
              (Mc.parametric ?max_states ?ns ~symmetry:kit s.spec
                 ~detector:(fun n -> s.detector n))
          | Mc.Sym_off | Mc.Sym_breaking _ | Mc.Sym_fallback _ -> None
        in
        let par_ok =
          match par with
          | None -> true
          | Some p -> (
            match p.Mc.par_verdict with
            | Mc.Refuted_at _ -> s.expect_violated
            | Mc.Cutoff_candidate _ | Mc.Proved_upto _ -> not s.expect_violated
            | Mc.Unverified _ -> false)
        in
        let exhaustive o = o.Mc.verdict = Space.Exhausted in
        let ok = agree && exhaustive raw && exhaustive sym && par_ok in
        Ok
          { sy_id = s.id;
            sy_label = s.label;
            sy_status = status;
            sy_detail = detail;
            sy_states = sym.Mc.states;
            sy_raw_states = raw.Mc.states;
            sy_agree = agree;
            sy_parametric = par;
            sy_ok = ok;
            sy_json =
              Printf.sprintf
                "{\"id\": %s, \"status\": %s, \"detail\": %s, \"states\": %d, \
                 \"raw_states\": %d, \"agree\": %b, \"ok\": %b, \"parametric\": %s}"
                (json_escape s.id) (json_escape status) (json_escape detail)
                sym.Mc.states raw.Mc.states agree ok
                (match par with
                | None -> "null"
                | Some p -> Mc.parametric_to_json p);
          }))

let sy_all ?max_states ?ns () =
  List.map
    (fun subj ->
      match sy_subject ?max_states ?ns subj with
      | Ok r -> r
      | Error e ->
        let (S s) = subj in
        { sy_id = s.id;
          sy_label = s.label;
          sy_status = "error";
          sy_detail = e;
          sy_states = 0;
          sy_raw_states = 0;
          sy_agree = false;
          sy_parametric = None;
          sy_ok = false;
          sy_json =
            Printf.sprintf "{\"id\": %s, \"error\": %s}" (json_escape s.id)
              (json_escape e);
        })
    (subjects @ liveness_subjects)
