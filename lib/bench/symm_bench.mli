(** Orbit-reduction rows (SY) for the experiment matrix.

    Each row runs {!Check.sy_subject} on one CHK subject: the
    quotiented and unreduced model-checking runs must claim the same
    things, certification outcomes are pinned (a subject that must
    certify going breaking — or vice versa — fails the row), and the
    certified rows climb the {!Afd_analysis.Mc.parametric} cutoff
    ladder.  The states explored feed the aggregate throughput the
    perf gate tracks. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [SY.p], [SY.s], [SY.sigma], [SY.marabout] (certified — cutoff or
    refuted ladders), [SY.omega], [SY.flipflop] (breaking, named
    witnesses) — all capped at 6000 product states. *)
