(** Liveness model-checking rows (ML) for the experiment matrix.

    Each row drives {!Afd_analysis.Mc}'s fairness-aware liveness pass
    end to end and renders only deterministic shape: two truthful
    pairings proved (safety and every [Stable] clause, over all fault
    patterns at n=3), the two liveness-broken detectors refuted with
    replay-confirmed lassos, and a raw SCC-condensation row.  The
    product transitions explored feed the aggregate transitions/sec
    the perf gate tracks. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [ML.omega], [ML.p], [ML.flipflop], [ML.silent], [ML.scc] — all
    capped at 6000 product states (well above the n=3 instances). *)
