(* Compiled-exploration rows (CX) for the experiment matrix.

   Each row explores one of the MX net compositions with the compiled
   explorer (Cspace: packed state keys, defunctionalized per-component
   step tables) at a fixed domain count, POR off and POR on, and
   asserts the equality gate: both compiled explorations must be
   structurally identical (Pspace.agree — states in order, edges in
   order, parents, depths, verdict, stats) to the sequential boxed
   Space.explore references.  The rendered detail carries only
   deterministic shape, so the verdict table stays byte-identical at
   any --jobs and any domain count; the cell's [steps] counts the
   transitions explored, feeding the same aggregate transitions/sec
   the perf gate tracks for MX and PX.

   Wall-clock speedup (compiled vs boxed states/s, and the large-cap
   packed run) is measured in the harness's perf section
   (bench/main.ml, CX timing), not here: matrix rows must never render
   timing. *)

open Afd_ioa
open Afd_system
module C = Afd_consensus
module R = Afd_runner
module A = Afd_analysis

let section = "CX  Compiled exploration (packed states, step tables, Cspace)"

let cap = 6_000

let domain_counts = [ 1; 2; 4 ]

let probe acts =
  A.Probe.make ~equal_action:Act.equal ~pp_action:Act.pp
    ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
    ~max_states:cap acts

let entry ~id ~label ~jobs mk_comp acts =
  let label = Printf.sprintf "%s, %d domains" label jobs in
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      let a = Composition.as_automaton (mk_comp ()) in
      let p = probe acts in
      let agree =
        A.Pspace.agree ~equal_state:Composition.equal_state
          ~equal_action:Act.equal
      in
      let seq_off = A.Space.explore ~por:false a p in
      let seq_on = A.Space.explore ~por:true a p in
      let cmp_off = A.Cspace.explore_composition ~por:false ~jobs (mk_comp ()) p in
      let cmp_on = A.Cspace.explore_composition ~por:true ~jobs (mk_comp ()) p in
      let ok_off = agree seq_off cmp_off and ok_on = agree seq_on cmp_on in
      let detail =
        Printf.sprintf
          "states=%d verdict=%s edges=%d POR-edges=%d boxed-equal=%b \
           por-boxed-equal=%b"
          (Array.length cmp_off.A.Space.states)
          (A.Space.verdict_string cmp_off.A.Space.verdict)
          (Array.length cmp_off.A.Space.edges)
          (Array.length cmp_on.A.Space.edges)
          ok_off ok_on
      in
      R.Metrics.outcome
        ~steps:
          (cmp_off.A.Space.stats.A.Space.transitions
          + cmp_on.A.Space.stats.A.Space.transitions)
        ~detail
        (if ok_off && ok_on then Afd_core.Verdict.Sat
         else
           Afd_core.Verdict.Violated
             "compiled exploration diverged from the boxed explorer"))

let entries () =
  List.concat_map
    (fun jobs ->
      [ entry ~id:(Printf.sprintf "CX.heartbeat.j%d" jobs)
          ~label:"heartbeat net, cap 6000" ~jobs
          (fun () ->
            (Heartbeat.net ~n:3 ~initial_timeout:2
               ~crashable:(Loc.Set.singleton 2) ())
              .Net.composition)
          Explore_bench.heartbeat_acts;
        entry ~id:(Printf.sprintf "CX.flood.j%d" jobs)
          ~label:"flood consensus net, cap 6000" ~jobs
          (fun () ->
            (C.Flood_p.net ~n:3 ~f:1 ~crashable:(Loc.Set.singleton 2) ())
              .Net.composition)
          Explore_bench.flood_acts;
      ])
    domain_counts
