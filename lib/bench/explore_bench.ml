(* Exploration-throughput rows for the experiment matrix.

   Each row explores a full net composition (the largest catalog
   subjects) twice with the hashed Space explorer — POR off and POR on
   — and reports the deterministic shape of the result: state count,
   edge counts, the POR edge-reduction factor and the completeness
   verdict.  The cell's [steps] is the number of transitions explored,
   so the perf gate (`make perf`, aggregate transitions/sec vs
   BENCH_baseline.json) tracks exploration throughput alongside the
   simulator's.  Timing never appears in the rendered row: the verdict
   table stays byte-identical across retentions and domain counts.

   The wall-clock comparison against the legacy list-scan seen-set
   lives in the harness's perf section (bench/main.ml, P5), not here. *)

open Afd_ioa
open Afd_system
module C = Afd_consensus
module R = Afd_runner
module A = Afd_analysis

let section = "MX  State-space exploration (hashed seen-set, sleep-set POR)"

let cap = 6_000

let explore ~por comp acts =
  let a = Composition.as_automaton comp in
  let p =
    A.Probe.make ~equal_action:Act.equal ~pp_action:Act.pp
      ~equal_state:Composition.equal_state ~hash_state:Composition.hash_state
      ~max_states:cap acts
  in
  A.Space.explore ~por a p

let entry ~id ~label mk_comp acts =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      let off = explore ~por:false (mk_comp ()) acts in
      let on = explore ~por:true (mk_comp ()) acts in
      let eo = Array.length off.A.Space.edges
      and en = Array.length on.A.Space.edges in
      let factor = if en = 0 then 1. else float_of_int eo /. float_of_int en in
      let detail =
        Printf.sprintf
          "states=%d verdict=%s edges=%d POR-edges=%d (%.2fx reduction, slept=%d)"
          (Array.length off.A.Space.states)
          (A.Space.verdict_string off.A.Space.verdict)
          eo en factor on.A.Space.stats.A.Space.slept
      in
      (* consistency, not timing: POR must reach the same states and
         never add edges *)
      let ok =
        Array.length off.A.Space.states = Array.length on.A.Space.states && en <= eo
      in
      R.Metrics.outcome
        ~steps:(off.A.Space.stats.A.Space.transitions + on.A.Space.stats.A.Space.transitions)
        ~detail
        (if ok then Afd_core.Verdict.Sat
         else Afd_core.Verdict.Violated "POR changed the reachable state set"))

let heartbeat_acts =
  [ Act.Crash 0;
    Act.Crash 2;
    Act.Send { src = 0; dst = 1; msg = Msg.Ping 0 };
    Act.Receive { src = 1; dst = 0; msg = Msg.Ping 0 };
    Act.Fd { at = 0; detector = Heartbeat.detector_name; payload = Act.Pset Loc.Set.empty };
  ]

let flood_acts =
  [ Act.Crash 0;
    Act.Crash 2;
    Act.Send { src = 0; dst = 1; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
    Act.Receive { src = 0; dst = 1; msg = Msg.Flood { round = 1; vals = Msg.vset_of true } };
    Act.Fd { at = 1; detector = C.Flood_p.detector_name; payload = Act.Pset Loc.Set.empty };
    Act.Propose { at = 0; v = true };
    Act.Decide { at = 0; v = true };
  ]

let entries () =
  [ entry ~id:"MX.heartbeat" ~label:"heartbeat net, cap 6000"
      (fun () ->
        (Heartbeat.net ~n:3 ~initial_timeout:2 ~crashable:(Loc.Set.singleton 2) ()).Net.composition)
      heartbeat_acts;
    entry ~id:"MX.flood" ~label:"flood consensus net, cap 6000"
      (fun () ->
        (C.Flood_p.net ~n:3 ~f:1 ~crashable:(Loc.Set.singleton 2) ()).Net.composition)
      flood_acts;
  ]
