(* The E1-E7 experiment matrix, as a library.

   Extracted from the bench harness so that the test suite can run the
   very same matrix — in particular the retention-equivalence
   regression, which re-runs every cell under each
   [Scheduler.retention] policy and demands identical verdict tables.
   Each entry declares detector/spec builders, a seed count, fault
   patterns and a step budget; the engine ([Afd_runner]) derives one
   scheduler seed per cell and runs cells across domains. *)

open Afd_ioa
open Afd_core
open Afd_system
module C = Afd_consensus
module R = Afd_runner
module Check = Check
module Explore_bench = Explore_bench
module Pspace_bench = Pspace_bench
module Cspace_bench = Cspace_bench
module Live_bench = Live_bench
module Churn_bench = Churn_bench
module Symm_bench = Symm_bench

let verdict_str = function
  | Verdict.Sat -> "sat"
  | Verdict.Violated m -> "VIOLATED: " ^ m
  | Verdict.Undecided m -> "undecided: " ^ m

let ok_str = function Ok _ -> "ok" | Error e -> "FAIL: " ^ e

let s12 = "E1/E2  Algorithms 1-2 implement Omega / P / EvP"
let s3 = "E3  AFD closure properties (validity, sampling, reordering)"
let s4 = "E4  Self-implementability: A^self uses D to solve a renaming of D"
let s56 = "E5/E6  Reductions and the strict hierarchy"
let s7 = "E7  Consensus is bounded; no representative AFD (Thm 21)"

let fd_check_entry ~retention ~id ~label ~detector ~spec ~n ~faults ~steps =
  R.Matrix.entry ~id ~section:s12 ~label ~seeds:5 ~faults:[ faults ]
    (fun ~seed ~faults ->
      let t =
        Afd_automata.generate_trace_with ~retention ~detector:(detector ()) ~n ~seed
          ~crash_at:faults ~steps
      in
      R.Metrics.outcome ~steps:(List.length t) (Afd.check spec ~n t))

let closure_entry ~retention ~id ~label ~detector ~spec ~faults ~steps =
  R.Matrix.entry ~id ~section:s3 ~label ~seeds:3 ~faults:[ faults ]
    ~show:(fun os ->
      Printf.sprintf "  %-40s %s" label
        (if R.Metrics.all_sat os then
           Printf.sprintf "closed (%d traces x 40 transforms)" (List.length os)
         else "FAILED"))
    (fun ~seed ~faults ->
      let rng = Random.State.make [| seed |] in
      let t =
        Afd_automata.generate_trace_with ~retention ~detector:(detector ()) ~n:3 ~seed
          ~crash_at:faults ~steps
      in
      R.Metrics.of_result ~steps:(List.length t)
        (Afd.check_all_properties spec ~n:3 ~rng ~trials:40 t))

let dk_entry =
  let label = "D_k (negative control)" in
  R.Matrix.entry ~id:"E3.dk" ~section:s3 ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      let orig, reord = D_k.closure_counterexample ~k:2 in
      let a = Afd.check (D_k.spec ~k:2) ~n:2 orig
      and b = Afd.check (D_k.spec ~k:2) ~n:2 reord in
      let ok = Verdict.is_sat a && Verdict.is_violated b in
      R.Metrics.outcome
        ~steps:(List.length orig + List.length reord)
        ~detail:(Printf.sprintf "original=%s, reordering=%s" (verdict_str a) (verdict_str b))
        (if ok then Verdict.Sat
         else Verdict.Violated "D_k negative control did not separate"))

let self_impl_entry ~retention ~id ~label ~spec ~detector ~faults =
  R.Matrix.entry ~id ~section:s4 ~label ~seeds:4 ~faults:[ faults ]
    ~show:(R.Matrix.show_seeds_sat ~label ~ok:"theorem 13 holds")
    (fun ~seed ~faults ->
      R.Metrics.of_result ~steps:400
        (Self_impl.check_theorem13_with ~retention ~spec ~detector:(detector ()) ~n:3
           ~seed ~crash_at:faults ~steps:400))

let p_trace ~retention seed =
  Afd_automata.generate_trace_with ~retention ~detector:(Afd_automata.fd_perfect ~n:3)
    ~n:3 ~seed ~crash_at:[ (10, 1) ] ~steps:120

let omega_trace ~retention seed =
  Afd_automata.generate_trace_with ~retention ~detector:(Afd_automata.fd_omega ~n:3)
    ~n:3 ~seed ~crash_at:[ (10, 1) ] ~steps:120

let reduction_entry ~id ~label ~mk_trace ~reduction =
  R.Matrix.entry ~id ~section:s56 ~label ~seeds:3 ~faults:[ [ (10, 1) ] ]
    ~show:(R.Matrix.show_sat ~label ~ok:"sound")
    (fun ~seed ~faults:_ ->
      let t = mk_trace seed in
      R.Metrics.outcome ~steps:(List.length t)
        (Reduction.check_on_trace (reduction ()) ~n:3 t))

let separation_entry ~id ~label ?pre_lines ~refute () =
  R.Matrix.entry ~id ~section:s56 ~label ?pre_lines
    ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      match refute () with
      | Ok _ -> R.Metrics.outcome ~detail:"candidate refuted" Verdict.Sat
      | Error e -> R.Metrics.outcome ~detail:("FAILED: " ^ e) (Verdict.Violated e))

(* E7's witness machinery: sub-seeds for the sampled fair traces are
   derived from the cell seed, one splitmix64 stream per purpose. *)
let e7_witness_traces ~retention ~seed =
  let witness_external = function
    | Act.Crash _ | Act.Propose _ | Act.Decide _ -> true
    | Act.Send _ | Act.Receive _ | Act.Fd _ | Act.Step _ | Act.Query _ | Act.Resp _
    | Act.Decide_id _ -> false
  in
  let seeds =
    List.init 6 (fun i -> Scheduler.Seed.derive ~root:seed ~key:"witness" ~index:i)
  in
  List.map (List.filter witness_external)
    (C.Witness.sample_traces_with ~retention ~n:3 ~seeds ~steps:150)

let e7_crash_indep ~retention =
  R.Matrix.entry ~id:"E7.crash-independence" ~section:s7
    ~label:"witness U: crash independence"
    ~show:(fun os ->
      Printf.sprintf "  witness U: crash independence          %s"
        (List.hd os).R.Metrics.detail)
    (fun ~seed ~faults:_ ->
      let traces = e7_witness_traces ~retention ~seed in
      let r =
        Bounded_problem.check_crash_independent (C.Witness.automaton ~n:3)
          ~is_crash:(fun a -> Act.is_crash a <> None)
          ~traces
      in
      R.Metrics.of_result
        ~steps:(List.fold_left (fun acc t -> acc + List.length t) 0 traces)
        ~detail:(ok_str r) r)

let e7_bounded_length ~retention =
  let bound = C.Witness.output_bound ~n:3 in
  R.Matrix.entry ~id:"E7.bounded-length" ~section:s7
    ~label:"witness U: bounded length"
    ~show:(fun os ->
      Printf.sprintf "  witness U: bounded length (b = %d)      %s" bound
        (List.hd os).R.Metrics.detail)
    (fun ~seed ~faults:_ ->
      let traces = e7_witness_traces ~retention ~seed in
      let r =
        Bounded_problem.check_bounded_length ~is_output:Act.is_decide ~bound ~traces
      in
      R.Metrics.of_result
        ~steps:(List.fold_left (fun acc t -> acc + List.length t) 0 traces)
        ~detail:(ok_str r) r)

let e7_extraction ~retention =
  R.Matrix.entry ~id:"E7.extraction" ~section:s7
    ~label:"extraction after quiescence"
    ~show:(fun os ->
      Printf.sprintf "  extraction after quiescence: %s" (List.hd os).R.Metrics.detail)
    (fun ~seed ~faults:_ ->
      let r =
        C.Extraction.run_with ~retention ~n:3 ~target:Ev_perfect.spec
          ~candidate:C.Extraction.echo_decision ~late_crash:1 ~seed ~steps:4000
      in
      let detail =
        Printf.sprintf "views equal=%b  A=%s  B=%s  refuted=%b"
          r.C.Extraction.observations_equal
          (verdict_str r.C.Extraction.verdict_a)
          (verdict_str r.C.Extraction.verdict_b)
          r.C.Extraction.refuted
      in
      R.Metrics.outcome ~steps:4000 ~detail
        (if r.C.Extraction.observations_equal && r.C.Extraction.refuted then
           Verdict.Sat
         else Verdict.Violated "extraction experiment did not refute the candidate"))

let matrix ?(retention = Scheduler.Trace_only) () =
  let noise3 =
    Afd_automata.noise_of_list
      [ (0, Loc.Set.singleton 1); (1, Loc.Set.singleton 2); (2, Loc.Set.of_list [ 0; 1 ]) ]
  in
  [ (* E1/E2 *)
    fd_check_entry ~retention ~id:"E1.omega" ~label:"FD-Omega (Alg 1) vs T_Omega"
      ~detector:(fun () -> Afd_automata.fd_omega ~n:4)
      ~spec:Omega.spec ~n:4 ~faults:[ (10, 1); (30, 3) ] ~steps:150;
    fd_check_entry ~retention ~id:"E2.p" ~label:"FD-P (Alg 2 + erratum guard) vs T_P"
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:4)
      ~spec:Perfect.spec ~n:4 ~faults:[ (12, 0) ] ~steps:150;
    fd_check_entry ~retention ~id:"E2.evp" ~label:"FD-P renamed vs T_EvP"
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:4)
      ~spec:Ev_perfect.spec ~n:4 ~faults:[ (12, 0) ] ~steps:150;
    (* E3 *)
    closure_entry ~retention ~id:"E3.omega" ~label:"Omega"
      ~detector:(fun () -> Afd_automata.fd_omega ~n:3)
      ~spec:Omega.spec ~faults:[ (9, 2) ] ~steps:90;
    closure_entry ~retention ~id:"E3.p" ~label:"P"
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:3)
      ~spec:Perfect.spec ~faults:[ (9, 2) ] ~steps:90;
    closure_entry ~retention ~id:"E3.evp" ~label:"EvP (noisy)"
      ~detector:(fun () -> Afd_automata.fd_ev_perfect_noisy ~n:3 ~noise:noise3)
      ~spec:Ev_perfect.spec ~faults:[ (11, 2) ] ~steps:110;
    dk_entry;
    (* E4 *)
    self_impl_entry ~retention ~id:"E4.omega" ~label:"Omega" ~spec:Omega.spec
      ~detector:(fun () -> Afd_automata.fd_omega ~n:3)
      ~faults:[ (11, 2) ];
    self_impl_entry ~retention ~id:"E4.p" ~label:"P" ~spec:Perfect.spec
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:3)
      ~faults:[ (13, 0) ];
    self_impl_entry ~retention ~id:"E4.evp" ~label:"EvP (noisy)" ~spec:Ev_perfect.spec
      ~detector:(fun () ->
        Afd_automata.fd_ev_perfect_noisy ~n:3
          ~noise:(Afd_automata.noise_of_list [ (0, Loc.Set.singleton 1) ]))
      ~faults:[ (17, 1) ];
    (* E5/E6: downward reductions *)
    reduction_entry ~id:"E5.p-evp" ~label:"P -> EvP" ~mk_trace:(p_trace ~retention)
      ~reduction:(fun () -> Reduction.p_to_evp);
    reduction_entry ~id:"E5.p-s" ~label:"P -> S" ~mk_trace:(p_trace ~retention)
      ~reduction:(fun () -> Reduction.p_to_strong);
    reduction_entry ~id:"E5.p-omega" ~label:"P -> Omega" ~mk_trace:(p_trace ~retention)
      ~reduction:(fun () -> Reduction.p_to_omega ~n:3);
    reduction_entry ~id:"E5.p-sigma" ~label:"P -> Sigma" ~mk_trace:(p_trace ~retention)
      ~reduction:(fun () -> Reduction.p_to_sigma ~n:3);
    reduction_entry ~id:"E5.omega-antiomega" ~label:"Omega -> anti-Omega"
      ~mk_trace:(omega_trace ~retention)
      ~reduction:(fun () -> Reduction.omega_to_anti_omega ~n:3);
    reduction_entry ~id:"E5.omega-omega2" ~label:"Omega -> Omega_2"
      ~mk_trace:(omega_trace ~retention)
      ~reduction:(fun () -> Reduction.omega_to_omega_k ~n:3 ~k:2);
    reduction_entry ~id:"E5.omega-psi2" ~label:"Omega -> Psi_2"
      ~mk_trace:(omega_trace ~retention)
      ~reduction:(fun () -> Reduction.omega_to_psi_k ~n:3 ~k:2);
    reduction_entry ~id:"E5.compose" ~label:"P -> EvP -> Omega (Thm 15 compose)"
      ~mk_trace:(p_trace ~retention)
      ~reduction:(fun () -> Reduction.(compose p_to_evp (evp_to_omega ~n:3)));
    (* E6: separations *)
    separation_entry ~id:"E6.evp-p" ~label:"EvP -/-> P (echo candidate)"
      ~pre_lines:
        [ "  -- upward directions (separations refute extraction candidates) --" ]
      ~refute:(fun () ->
        let echo _i hist = match List.rev hist with [] -> None | h :: _ -> Some h in
        Reduction.refute ~candidate:echo ~target:Perfect.spec
          (Reduction.evp_not_to_p ~len:5))
      ();
    separation_entry ~id:"E6.omega-evp" ~label:"Omega -/-> EvP (constant candidate)"
      ~refute:(fun () ->
        Reduction.refute
          ~candidate:(fun _ _ -> Some Loc.Set.empty)
          ~target:Ev_perfect.spec (Reduction.omega_not_to_evp ~len:5))
      ();
    separation_entry ~id:"E6.antiomega-omega-self"
      ~label:"anti-Omega -/-> Omega (self-leader)"
      ~refute:(fun () ->
        Reduction.refute ~candidate:(fun i _ -> Some i) ~target:Omega.spec
          (Reduction.anti_omega_not_to_omega ~len:5))
      ();
    separation_entry ~id:"E6.antiomega-omega-min"
      ~label:"anti-Omega -/-> Omega (min-unnamed)"
      ~refute:(fun () ->
        Reduction.refute
          ~candidate:(fun _i hist ->
            match List.rev hist with
            | [] -> None
            | l :: _ -> Loc.min_not_in ~n:3 (Loc.equal l))
          ~target:Omega.spec
          (Reduction.anti_omega_not_to_omega ~len:5))
      ();
    (* E7 *)
    e7_crash_indep ~retention;
    e7_bounded_length ~retention;
    e7_extraction ~retention;
  ]
  (* MX: exploration throughput (retention-independent by construction) *)
  @ Explore_bench.entries ()
  (* PX: parallel exploration, differential against MX's sequential
     explorer (retention-independent: pure graph work) *)
  @ Pspace_bench.entries ()
  (* CX: compiled exploration, differential against the boxed explorer
     (retention-independent: pure graph work) *)
  @ Cspace_bench.entries ()
  (* ML: liveness model checking (retention-independent: pure graph work) *)
  @ Live_bench.entries ()
  (* CN: churn simulation on the mega event-queue engine (retention-
     independent: it never touches the task scheduler) *)
  @ Churn_bench.entries ()
  (* SY: orbit reduction, quotiented runs differential against the
     unreduced model checker (retention-independent: pure graph work) *)
  @ Symm_bench.entries ()
