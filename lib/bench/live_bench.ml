(* Liveness model-checking rows (ML) for the experiment matrix.

   Each row drives the fairness-aware liveness pass end to end and
   reports only its deterministic shape: product states, transitions,
   which Stable clauses were proved (no fair violating cycle under an
   exhausted exploration) or refuted (replay-confirmed lasso).  The
   cell's [steps] is the number of product transitions explored, so
   the perf gate (`make perf`, aggregate transitions/sec vs
   BENCH_baseline.json) tracks fair-cycle throughput alongside the
   simulator's and the explorer's.  Timing never appears in the
   rendered row. *)

open Afd_ioa
open Afd_core
module R = Afd_runner
module A = Afd_analysis

let section = "ML  Liveness model checking (SCC condensation, fair-cycle lassos)"

let cap = 6_000

(* Prove both halves of a truthful pairing: the row is Sat iff the
   whole formula — safety and every Stable clause — holds on every
   fair execution of the n=3 instance. *)
let prove_entry ~id ~label ~spec ~detector =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      match
        A.Mc.check_spec ~max_states:cap ~n:3 spec ~detector:(detector ())
      with
      | Error e -> R.Metrics.outcome ~detail:("FAIL: " ^ e) (Verdict.Violated e)
      | Ok o ->
        let detail =
          Printf.sprintf "states=%d verdict=%s liveness-proved=[%s]"
            o.A.Mc.states
            (A.Space.verdict_string o.A.Mc.verdict)
            (String.concat "," o.A.Mc.liveness_proved)
        in
        R.Metrics.outcome ~steps:o.A.Mc.transitions ~detail
          (if o.A.Mc.proved then Verdict.Sat
           else Verdict.Violated "truthful pairing not proved"))

(* Refute a liveness-broken pairing: the row is Sat iff the fair-cycle
   search produced at least one lasso of the expected kind and every
   lasso replays through the online monitor with the clause still
   non-Sat. *)
let refute_entry ~id ~label ~kind ~spec ~detector =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      match
        A.Mc.check_spec ~max_states:cap ~n:3 spec ~detector:(detector ())
      with
      | Error e -> R.Metrics.outcome ~detail:("FAIL: " ^ e) (Verdict.Violated e)
      | Ok o ->
        let kind_str = function `Cycle -> "fair-cycle" | `Stop -> "fair-stop" in
        let ok =
          o.A.Mc.lassos <> []
          && List.for_all (fun l -> l.A.Mc.l_confirmed) o.A.Mc.lassos
          && List.exists (fun l -> l.A.Mc.l_kind = kind) o.A.Mc.lassos
        in
        let detail =
          Printf.sprintf "states=%d lassos=[%s]" o.A.Mc.states
            (String.concat ","
               (List.map
                  (fun l ->
                    Printf.sprintf "%s:%s@%d%s" (kind_str l.A.Mc.l_kind)
                      l.A.Mc.l_clause l.A.Mc.l_depth
                      (if l.A.Mc.l_confirmed then "" else "(UNCONFIRMED)"))
                  o.A.Mc.lassos))
        in
        R.Metrics.outcome ~steps:o.A.Mc.transitions ~detail
          (if ok then Verdict.Sat
           else Verdict.Violated "expected a replay-confirmed lasso"))

(* Raw condensation throughput over a closed system's explored graph:
   states in, SCCs out.  The row is Sat iff every state lands in an
   SCC and the condensation found at least one cycle-capable SCC (the
   detector system can always keep outputting). *)
let scc_entry ~id ~label ~detector =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      let d = detector () in
      let comp =
        Composition.make ~name:"live-bench"
          [ Component.C d;
            Component.C
              (Afd_automata.crash_automaton ~n:3
                 ~crashable:(Loc.set_of_universe ~n:3));
          ]
      in
      let a = Composition.as_automaton comp in
      let p =
        A.Probe.make
          ~equal_state:Composition.equal_state
          ~hash_state:Composition.hash_state ~max_states:cap []
      in
      let sp = A.Space.explore a p in
      let live = A.Live.analyze a sp in
      let cyclic =
        Array.to_list live.A.Live.sccs
        |> List.filter (fun s -> s.A.Live.internal <> [])
        |> List.length
      in
      let covered =
        Array.for_all
          (fun i -> i >= 0 && i < Array.length live.A.Live.sccs)
          live.A.Live.scc_of
      in
      let detail =
        Printf.sprintf "states=%d sccs=%d cycle-capable=%d fair-tasks=%d"
          (Array.length sp.A.Space.states)
          (Array.length live.A.Live.sccs)
          cyclic
          (List.length live.A.Live.fair_tasks)
      in
      R.Metrics.outcome ~steps:sp.A.Space.stats.A.Space.transitions ~detail
        (if covered && cyclic > 0 then Verdict.Sat
         else Verdict.Violated "condensation lost states or found no cycle"))

let entries () =
  [ prove_entry ~id:"ML.omega" ~label:"prove Omega: FD-Omega, n=3"
      ~spec:Omega.spec
      ~detector:(fun () -> Afd_automata.fd_omega ~n:3);
    prove_entry ~id:"ML.p" ~label:"prove P: FD-P, n=3" ~spec:Perfect.spec
      ~detector:(fun () -> Afd_automata.fd_perfect ~n:3);
    refute_entry ~id:"ML.flipflop" ~label:"refute FD-FlipFlop vs Omega (lasso)"
      ~kind:`Cycle ~spec:Omega.spec
      ~detector:(fun () -> Afd_automata.fd_flip_flop ~n:3);
    refute_entry ~id:"ML.silent" ~label:"refute FD-Silent vs P (fair stop)"
      ~kind:`Stop ~spec:Perfect.spec
      ~detector:(fun () -> Afd_automata.fd_silent ~n:3);
    scc_entry ~id:"ML.scc" ~label:"condense FD-Sigma + crash, n=3"
      ~detector:(fun () -> Afd_automata.fd_sigma ~n:3);
  ]
