(** Compiled-exploration rows (CX) for the experiment matrix.

    Each row explores one of the MX net compositions with the compiled
    explorer ({!Afd_analysis.Cspace}: packed state keys,
    defunctionalized per-component step tables) at a fixed domain
    count (1, 2 or 4), POR off and POR on, and asserts the equality
    gate: the verdict is [Sat] iff both compiled explorations are
    structurally identical ({!Afd_analysis.Pspace.agree}) to the
    sequential boxed {!Afd_analysis.Space.explore} references.  The
    rendered detail is deterministic shape only — the verdict table is
    byte-identical at any [--jobs] — and the transitions explored feed
    the aggregate transitions/sec the perf gate tracks.

    Wall-clock speedup (compiled vs boxed states/s, and the large-cap
    packed run) is measured in the harness's perf section
    (bench/main.ml, CX timing), never in matrix rows. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [CX.heartbeat.jN] and [CX.flood.jN] for N in 1, 2, 4, all capped
    at 6000 states. *)
