(** Churn-simulation rows (CN) for the experiment matrix.

    Each row drives the {!Afd_mega} discrete-event engine end to end —
    a universe of thousands of processes under the seeded churn
    adversary — and renders only its deterministic shape: events
    processed, final membership, fault/detection counts, latency
    percentiles in virtual ticks and the sampled-monitor verdict.  The
    cell's [steps] is the number of events processed, so the perf gate
    (`make perf`, aggregate transitions/sec vs BENCH_baseline.json)
    tracks event-queue throughput alongside the simulator's and the
    explorers'.  Wall-clock figures appear only in the harness timing
    lines, never in matrix rows. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [CN.hb-ring], [CN.hb-grid], [CN.vcube-hypercube] and
    [CN.vcube-quiet]: both catalog detectors, with and without churn. *)
