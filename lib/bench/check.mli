(** Online/offline differential checking of the detector catalog.

    Every subject runs the same seeded schedule twice — streaming
    events into the spec's compiled monitor (nothing retained beyond
    the monitor's window) and replaying the materialized trace through
    the legacy offline [check] — and each matrix cell's verdict is the
    {e meta}-verdict: [Sat] iff the two verdicts agree structurally
    {e and} the subject's expectation (sat for truthful pairings,
    violated for the deliberately broken ones) is met.  The raw online
    verdict, per-clause verdicts and the counterexample prefix index
    are recorded in the cell outcome and surface in verdict tables and
    BENCH.json. *)

open Afd_ioa
open Afd_core

type subject =
  | S : {
      id : string;  (** stable matrix id, e.g. ["CHK.p"] *)
      label : string;
      n : int;  (** default instance size; matrix and MC rows run here *)
      steps : int;
      crash_at : (int * Loc.t) list;
      detector : int -> ('s, 'o Fd_event.t) Automaton.t;
          (** instance builder — the parametric ladder ({!sy_subject})
              re-instantiates it at growing sizes *)
      symm : 's Afd_analysis.Mc.state_symmetry option;
          (** declared process-permutation action on detector states;
              a wrong declaration yields a breaking witness and an
              unreduced run, never an unsound quotient *)
      spec : 'o Afd.spec;
      expect_violated : bool;
          (** deliberate detector/spec mismatch: the cell demands a
              [Violated] verdict (with its counterexample index)
              instead of [Sat] *)
    }
      -> subject

val id : subject -> string
val expect_violated : subject -> bool

val subjects : subject list
(** The 11 catalog specs run against their truthful automata, plus two
    deliberate mismatches ([CHK.lying-p], [CHK.marabout]). *)

type outcome = {
  online : Verdict.t;  (** the streaming monitor's verdict *)
  offline : Verdict.t;  (** legacy full-trace [Afd.check] *)
  clauses : (string * Verdict.t) list;
  counterexample : int option;
      (** minimal violating prefix index, when violated *)
  events : int;  (** FD events the run produced *)
}

val verdict_equal : Verdict.t -> Verdict.t -> bool
(** Structural equality, reasons included. *)

val run_subject :
  ?window:int -> retention:Scheduler.retention -> seed:int -> subject -> outcome
(** Run one subject under one seed: online under [retention] (with
    [record_fired:false] — no trace is materialized on that run), then
    offline on the regenerated trace.  Raises [Invalid_argument] on a
    raw (non-prop) spec; the shipped {!subjects} are all compiled. *)

val section : string

val entry :
  ?window:int -> ?seeds:int -> retention:Scheduler.retention -> subject ->
  Afd_runner.Matrix.entry
(** A matrix row for one subject; [seeds] defaults to 3. *)

val matrix :
  ?window:int ->
  ?seeds:int ->
  ?retention:Scheduler.retention ->
  unit ->
  Afd_runner.Matrix.entry list
(** One row per {!subjects} entry.  [retention] defaults to
    [Scheduler.Window 64]: the monitors' verdicts must not depend on
    what the scheduler retains. *)

(** {1 Exhaustive model checking}

    The same subjects, but instead of sampling seeded schedules each
    detector is composed with the crash automaton and its spec's
    clauses — safety {e and} [Stable] liveness — are model-checked over
    {e every} reachable state ({!Afd_analysis.Mc}).  Where a matrix
    cell says "agreed on 3 seeds", an [mc_result] with
    [mc_proved = true] says "holds on all fair schedules and fault
    patterns of this instance". *)

val liveness_subjects : subject list
(** [CHK.flipflop] (FD-FlipFlop vs Ω: the elected leader alternates
    forever) and [CHK.silent] (FD-Silent vs P: only location 0 ever
    outputs).  Broken only in the limit — every finite prefix is safe,
    so the seeded matrix cannot catch them; {!mc_all} refutes them
    with fair-cycle lassos (and therefore omits them under [por],
    which disables the fair-cycle pass). *)

type mc_violation = {
  clause : string;
  vkind : string;  (** ["edge"] or ["judgement"] *)
  depth : int;  (** minimal violating prefix length (BFS-shortest) *)
  index : int;  (** counterexample prefix index *)
  window : string list;  (** rendered trailing events of the witness *)
  reason : string;
  confirmed : bool;  (** witness replayed through {!Afd_prop.Monitor.replay} *)
}

type mc_lasso = {
  lclause : string;  (** the refuted [Stable] clause *)
  lkind : string;  (** ["fair-cycle"] or ["fair-stop"] *)
  ldepth : int;  (** BFS depth of the lasso pivot *)
  lstem : int;  (** stem length, in events *)
  lcycle : int;  (** cycle length, in events (0 for a fair stop) *)
  lreason : string;
  lconfirmed : bool;
      (** stem + k unrollings (k = 1, 2, 3) replayed through the
          monitor leave the clause non-[Sat] every time *)
}

type mc_result = {
  mc_id : string;
  mc_label : string;
  mc_expect_violated : bool;
  mc_verdict : string;  (** {!Afd_analysis.Space.verdict_string} *)
  mc_exhaustive : bool;
  mc_states : int;
  mc_transitions : int;
  mc_proved : bool;  (** safety and liveness, over all fair executions *)
  mc_safety : string list;  (** safety clauses model-checked *)
  mc_liveness_proved : string list;
      (** [Stable] clauses with no fair violating cycle or stop *)
  mc_liveness_skipped : string list;
      (** [Stable] clauses left undecided (truncated or POR) *)
  mc_violations : mc_violation list;
  mc_lassos : mc_lasso list;  (** one per refuted [Stable] clause *)
  mc_ok : bool;
      (** the meta-verdict: exhaustive, and proved (truthful pairing —
          safety only under [por], where liveness is out of scope) or
          confirmed-violated / confirmed-lassoed (broken pairing) *)
  mc_profile : (string * float) list;
      (** per-phase wall-clock seconds when profiled, else empty *)
  mc_json : string;  (** the underlying {!Afd_analysis.Mc.outcome_to_json} *)
}

val mc_subject :
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?profile:bool ->
  subject ->
  (mc_result, string) result
(** Model-check one subject; [Error] for raw specs.  [jobs > 1] runs
    the product exploration on {!Afd_analysis.Pspace}, [compiled] on
    {!Afd_analysis.Cspace} — the result (JSON included) is
    byte-identical at any [jobs], compiled or not.  [profile] (default
    [false]) collects per-phase timings into the JSON's ["profile"]
    field (and only then — unprofiled JSON is unchanged). *)

val mc_all :
  ?max_states:int ->
  ?por:bool ->
  ?jobs:int ->
  ?compiled:bool ->
  ?profile:bool ->
  unit ->
  mc_result list
(** All {!subjects}, plus {!liveness_subjects} when [por] is off; a
    raw spec yields a failing row ([mc_ok = false],
    [mc_verdict = "error"]) instead of an exception. *)

(** {1 Orbit-quotiented re-verification}

    Each subject is model-checked twice — unreduced and with its
    declared {!Afd_analysis.Mc.state_symmetry} — and the two runs must
    {e claim} the same things: identical safety verdict and identical
    violated-clause sets, every witness replay-confirmed.
    Certified-symmetric subjects additionally climb the
    {!Afd_analysis.Mc.parametric} ladder, re-instantiating the
    detector at growing sizes. *)

type sy_result = {
  sy_id : string;
  sy_label : string;
  sy_status : string;
      (** ["certified"], ["breaking"], ["fallback"] or ["error"] *)
  sy_detail : string;
      (** certificate summary, breaking witness or fallback reason *)
  sy_states : int;  (** product states with symmetry requested *)
  sy_raw_states : int;  (** unreduced product states *)
  sy_agree : bool;
      (** same safety verdict and violated-clause/confirmed sets as the
          unreduced run (depths and windows are {e not} compared: a
          quotient-shortest path lifts to a genuine but not necessarily
          shortest run) *)
  sy_parametric : Afd_analysis.Mc.parametric option;
      (** the cutoff ladder, for certified subjects only *)
  sy_ok : bool;
      (** [sy_agree], both runs exhaustive, and the ladder verdict
          matches the expectation (refuted iff [expect_violated]) *)
  sy_json : string;
}

val sy_subject :
  ?max_states:int -> ?ns:int list -> subject -> (sy_result, string) result
(** [Error] on a raw spec or a subject with no declared symmetry.
    [ns] (default [2; 3; 4; 5]) are the parametric instance sizes. *)

val sy_all : ?max_states:int -> ?ns:int list -> unit -> sy_result list
(** All {!subjects} plus {!liveness_subjects}; errors become failing
    rows ([sy_ok = false], [sy_status = "error"]). *)
