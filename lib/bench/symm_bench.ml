(* Orbit-reduction rows (SY) for the experiment matrix.

   Each row re-verifies one CHK subject through {!Check.sy_subject}:
   the unreduced and orbit-quotiented model-checking runs must claim
   the same things, and certified subjects additionally climb the
   parametric cutoff ladder.  The cell's [steps] is the total product
   states explored (quotient + unreduced), so the perf gate tracks the
   reduction machinery's throughput alongside the explorers'.  Rows
   are deterministic: pure graph work, retention-independent. *)

module R = Afd_runner
module A = Afd_analysis
module Check = Check

let section = "SY  Orbit reduction (equivariance certificates, cutoff ladders)"

let cap = 6_000

(* [expect] pins the certification outcome itself: a row goes Violated
   when a subject that must certify stops certifying (or vice versa) —
   a regression in the analyzer, not just in the verdicts. *)
let entry ~id ~label ~expect subj =
  R.Matrix.entry ~id ~section ~label ~show:(R.Matrix.show_detail ~label)
    (fun ~seed:_ ~faults:_ ->
      match Check.sy_subject ~max_states:cap subj with
      | Error e ->
        R.Metrics.outcome ~detail:("FAIL: " ^ e) (Afd_core.Verdict.Violated e)
      | Ok r ->
        let ladder =
          match r.Check.sy_parametric with
          | None -> ""
          | Some p ->
            Printf.sprintf "  ladder=%s"
              (match p.A.Mc.par_verdict with
              | A.Mc.Cutoff_candidate { n0; upto } ->
                Printf.sprintf "cutoff-candidate(n0=%d,upto=%d)" n0 upto
              | A.Mc.Proved_upto n -> Printf.sprintf "proved-upto(%d)" n
              | A.Mc.Refuted_at n -> Printf.sprintf "refuted-at(%d)" n
              | A.Mc.Unverified why -> "unverified: " ^ why)
        in
        let detail =
          Printf.sprintf "%s  states=%d raw=%d%s" r.Check.sy_status
            r.Check.sy_states r.Check.sy_raw_states ladder
        in
        let verdict =
          if not r.Check.sy_ok then
            Afd_core.Verdict.Violated "quotiented and unreduced runs disagree"
          else if r.Check.sy_status <> expect then
            Afd_core.Verdict.Violated
              (Printf.sprintf "expected %s, certification said %s" expect
                 r.Check.sy_status)
          else Afd_core.Verdict.Sat
        in
        R.Metrics.outcome
          ~steps:(r.Check.sy_states + r.Check.sy_raw_states)
          ~detail verdict)

let find id =
  List.find
    (fun s -> String.equal (Check.id s) id)
    (Check.subjects @ Check.liveness_subjects)

let entries () =
  [ entry ~id:"SY.p" ~label:"quotient P: FD-P + cutoff ladder"
      ~expect:"certified" (find "CHK.p");
    entry ~id:"SY.s" ~label:"quotient S: FD-P + cutoff ladder"
      ~expect:"certified" (find "CHK.s");
    entry ~id:"SY.sigma" ~label:"quotient Sigma: FD-Sigma + cutoff ladder"
      ~expect:"certified" (find "CHK.sigma");
    entry ~id:"SY.marabout" ~label:"quotient Marabout vs FD-P (refuted ladder)"
      ~expect:"certified" (find "CHK.marabout");
    entry ~id:"SY.omega" ~label:"FD-Omega breaks symmetry (named witness)"
      ~expect:"breaking" (find "CHK.omega");
    entry ~id:"SY.flipflop" ~label:"FD-FlipFlop breaks symmetry (named witness)"
      ~expect:"breaking" (find "CHK.flipflop");
  ]
