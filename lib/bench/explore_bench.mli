(** Exploration-throughput rows (MX) for the experiment matrix.

    Each row explores a full net composition with the hashed {!Afd_analysis.Space}
    explorer, POR off and on, and renders only deterministic shape
    (states, edges, POR reduction factor, verdict); the transitions
    explored feed the aggregate transitions/sec the perf gate tracks.
    The cell verdict is [Sat] iff POR preserved the state count and did
    not add edges. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [MX.heartbeat] and [MX.flood], both capped at 6000 states. *)

val heartbeat_acts : Afd_system.Act.t list
(** The probe actions of the heartbeat rows — shared with the PX rows
    ({!Pspace_bench}) so both explore the identical state space. *)

val flood_acts : Afd_system.Act.t list
(** The probe actions of the flood-consensus rows — shared with the PX
    rows ({!Pspace_bench}). *)
