(** Exploration-throughput rows (MX) for the experiment matrix.

    Each row explores a full net composition with the hashed {!Afd_analysis.Space}
    explorer, POR off and on, and renders only deterministic shape
    (states, edges, POR reduction factor, verdict); the transitions
    explored feed the aggregate transitions/sec the perf gate tracks.
    The cell verdict is [Sat] iff POR preserved the state count and did
    not add edges. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [MX.heartbeat] and [MX.flood], both capped at 6000 states. *)
