(** Parallel-exploration rows (PX) for the experiment matrix.

    Each row explores one of the MX net compositions with the parallel
    explorer ({!Afd_analysis.Pspace}) at a fixed domain count (1, 2, 4
    or 8), POR off and POR on, and asserts the equality gate: the
    verdict is [Sat] iff both parallel explorations are structurally
    identical ({!Afd_analysis.Pspace.agree}) to the sequential
    {!Afd_analysis.Space.explore} references.  The rendered detail is
    deterministic shape only — the verdict table is byte-identical at
    any [--jobs] — and the transitions explored feed the aggregate
    transitions/sec the perf gate tracks.

    Wall-clock speedup is measured in the harness's perf section
    (bench/main.ml, PX timing), never in matrix rows. *)

val entries : unit -> Afd_runner.Matrix.entry list
(** [PX.heartbeat.jN] and [PX.flood.jN] for N in 1, 2, 4, 8, all
    capped at 6000 states. *)
