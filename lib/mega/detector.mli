(** Scalable detector instances for the mega engine.

    A detector is a set of per-process reactions to timers and
    messages, over flat per-process state sized once at instantiation
    ({!Univ.cap} slots).  The engine provides the context: sending
    (which applies link/partition failures and delivery delay),
    per-process timers (single chain per process, epoch-guarded across
    crash/recovery), and the suspicion-transition callback feeding the
    metrics layer and the sampled monitor.  Every reaction touches
    O(degree) state — nothing scans the universe. *)

type ctx = {
  univ : Univ.t;
  topo : Topology.t;
  cal : Calendar.t;
  det_rng : Rng.t;  (** jitter stream, derived from the root seed *)
  period : int;  (** base protocol period, virtual ticks *)
  send : src:int -> dst:int -> tag:int -> payload:int -> unit;
  set_timer : p:int -> after:int -> unit;
  suspect : observer:int -> target:int -> suspected:bool -> unit;
      (** suspicion {e transitions} only (edge-triggered) *)
}

type t = {
  dname : string;
  on_start : int -> unit;  (** process becomes live: init, join, recovery *)
  on_stop : int -> unit;  (** process crashed or left *)
  on_timer : int -> unit;
  on_receive : src:int -> dst:int -> tag:int -> payload:int -> unit;
}

type spec = {
  sname : string;
  sdoc : string;
  instantiate : ctx -> t;
}
