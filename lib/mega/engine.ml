open Afd_ioa
open Afd_core

type cfg = {
  procs : int;
  events : int;
  churn_rate : float;
  topology : Topology.t;
  detector : string;
  seed : int;
  sample : int;
}

let cfg ?(churn_rate = 5.0) ?(topology = Topology.Ring 2) ?(detector = "vcube") ?(seed = 1)
    ?(sample = 32) ~procs ~events () =
  { procs; events; churn_rate; topology; detector; seed; sample }

type report = {
  detector_name : string;
  procs0 : int;
  requested : int;
  processed : int;
  vtime : int;
  final_live : int;
  final_count : int;
  crashes : int;
  recoveries : int;
  joins : int;
  leaves : int;
  link_downs : int;
  link_ups : int;
  partitions : int;
  heals : int;
  sends : int;
  drops : int;
  detections : int;
  lat_p50 : int;
  lat_p95 : int;
  lat_p99 : int;
  false_suspicions : int;
  fs_p50 : int;
  fs_p95 : int;
  fs_p99 : int;
  monitor_verdict : Verdict.t;
  monitor_clauses : (string * Verdict.t) list;
  wall_s : float;
  events_per_s : float;
  peak_words : int;
}

(* calendar event kinds *)
let k_timer = 0
let k_deliver = 1

let max_links = 16
let period = 8

let run c =
  if c.procs < 1 || c.procs > 1_500_000 then
    invalid_arg "Engine.run: procs out of [1, 1_500_000]";
  if c.events < 0 then invalid_arg "Engine.run: negative event budget";
  let det_spec =
    match Catalog.find c.detector with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf "Engine.run: unknown detector %S (have: %s)" c.detector
           (String.concat ", " Catalog.names))
  in
  let t0 = Unix.gettimeofday () in
  (* headroom for joiners; the churn layer stops joining at capacity *)
  let cap = c.procs + (c.procs / 4) + 64 in
  let univ = Univ.create ~cap ~n:c.procs in
  let cal = Calendar.create () in
  let stream key = Rng.make (Scheduler.Seed.derive ~root:c.seed ~key ~index:0) in
  let delay_rng = stream "mega.delay" in
  let churn_rng = stream "mega.churn" in
  let det_rng = stream "mega.detector" in
  let sample = Sample.create ~s:(min 63 (max 1 (min c.sample c.procs))) ~window:4096 in
  let epoch = Array.make cap 0 in
  let crash_time = Array.make cap (-1) in
  let first_detect = Array.make cap (-1) in
  let lat = Stats.series () in
  let fs_dur = Stats.series () in
  (* open false suspicions: (observer * cap + target) -> start time *)
  let fs_open : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let links = Array.make max_links 0 in
  let llen = ref 0 in
  let part = ref (-1) in
  let sends = ref 0 in
  let drops = ref 0 in
  let crashes = ref 0 in
  let recoveries = ref 0 in
  let joins = ref 0 in
  let leaves = ref 0 in
  let link_downs = ref 0 in
  let link_ups = ref 0 in
  let partitions = ref 0 in
  let heals = ref 0 in
  let detections = ref 0 in
  let false_suspicions = ref 0 in
  let link_down src dst =
    let key = (src * cap) + dst in
    let down = ref false in
    for i = 0 to !llen - 1 do
      if links.(i) = key then down := true
    done;
    !down
  in
  let send ~src ~dst ~tag ~payload =
    incr sends;
    let cut = !part >= 0 && src < !part <> (dst < !part) in
    if cut || link_down src dst then incr drops
    else
      Calendar.schedule cal
        ~at:(Calendar.now cal + 1 + Rng.int delay_rng 4)
        ~kind:k_deliver ~a:src ~b:dst ~c:tag ~d:payload
  in
  let set_timer ~p ~after =
    Calendar.schedule cal
      ~at:(Calendar.now cal + max 1 after)
      ~kind:k_timer ~a:p ~b:epoch.(p) ~c:0 ~d:0
  in
  let suspect ~observer ~target ~suspected =
    Sample.susp sample ~observer ~target ~suspected;
    let now = Calendar.now cal in
    if suspected then begin
      if Univ.is_live univ target then begin
        incr false_suspicions;
        let key = (observer * cap) + target in
        if not (Hashtbl.mem fs_open key) then Hashtbl.add fs_open key now
      end
      else if first_detect.(target) < 0 && crash_time.(target) >= 0 then begin
        first_detect.(target) <- now;
        incr detections;
        Stats.add lat (now - crash_time.(target))
      end
    end
    else begin
      let key = (observer * cap) + target in
      match Hashtbl.find_opt fs_open key with
      | Some start ->
        Stats.add fs_dur (now - start);
        Hashtbl.remove fs_open key
      | None -> ()
    end
  in
  let ctx =
    { Detector.univ;
      topo = c.topology;
      cal;
      det_rng;
      period;
      send;
      set_timer;
      suspect;
    }
  in
  let det = det_spec.Detector.instantiate ctx in
  (* false-suspicion records involving a process that just died are
     void: the suspicion is no longer false *)
  let purge_fs p =
    Hashtbl.filter_map_inplace
      (fun key start ->
        if key / cap = p || key mod cap = p then None else Some start)
      fs_open
  in
  let stop p =
    epoch.(p) <- epoch.(p) + 1;
    det.Detector.on_stop p;
    crash_time.(p) <- Calendar.now cal;
    first_detect.(p) <- -1;
    Sample.clear_row sample p;
    Sample.crash sample p;
    purge_fs p
  in
  let draw_with_status st =
    let n = Univ.count univ in
    let found = ref (-1) in
    let tries = ref 0 in
    while !found < 0 && !tries < 8 do
      let i = Rng.int churn_rng n in
      if Univ.status univ i = st then found := i;
      incr tries
    done;
    !found
  in
  let churn_action () =
    match Churn.pick churn_rng with
    | Churn.Crash ->
      if Univ.live_count univ > 2 then begin
        let p = draw_with_status Univ.live in
        if p >= 0 then begin
          Univ.set_status univ p Univ.crashed;
          stop p;
          incr crashes
        end
      end
    | Churn.Recover -> (
      let p = draw_with_status Univ.crashed in
      if p >= 0 then begin
        Univ.set_status univ p Univ.live;
        epoch.(p) <- epoch.(p) + 1;
        crash_time.(p) <- -1;
        first_detect.(p) <- -1;
        det.Detector.on_start p;
        incr recoveries
      end)
    | Churn.Join -> (
      match Univ.join univ ~ext:(1_000_000_000 + !joins) with
      | Some id ->
        det.Detector.on_start id;
        incr joins
      | None -> ())
    | Churn.Leave ->
      if Univ.live_count univ > 2 then begin
        let p = draw_with_status Univ.live in
        if p >= 0 then begin
          Univ.set_status univ p Univ.left;
          stop p;
          incr leaves
        end
      end
    | Churn.Link_down ->
      if !llen < max_links then begin
        let src = draw_with_status Univ.live in
        let dst = draw_with_status Univ.live in
        if src >= 0 && dst >= 0 && src <> dst then begin
          links.(!llen) <- (src * cap) + dst;
          incr llen;
          incr link_downs
        end
      end
    | Churn.Link_up ->
      if !llen > 0 then begin
        let i = Rng.int churn_rng !llen in
        links.(i) <- links.(!llen - 1);
        decr llen;
        incr link_ups
      end
    | Churn.Partition ->
      if !part < 0 && Univ.count univ >= 2 then begin
        part := 1 + Rng.int churn_rng (Univ.count univ - 1);
        incr partitions
      end
    | Churn.Heal ->
      if !part >= 0 then begin
        part := -1;
        incr heals
      end
  in
  (* boot the universe *)
  for p = 0 to c.procs - 1 do
    det.Detector.on_start p
  done;
  let churn_k =
    if c.churn_rate <= 0.0 then 0
    else max 1 (int_of_float ((1000.0 /. c.churn_rate) +. 0.5))
  in
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < c.events do
    if Calendar.pop cal then begin
      incr processed;
      let k = Calendar.ev_kind cal in
      if k = k_timer then begin
        let p = Calendar.ev_a cal in
        if Calendar.ev_b cal = epoch.(p) && Univ.is_live univ p then det.Detector.on_timer p
      end
      else begin
        let dst = Calendar.ev_b cal in
        if Univ.is_live univ dst then
          det.Detector.on_receive ~src:(Calendar.ev_a cal) ~dst ~tag:(Calendar.ev_c cal)
            ~payload:(Calendar.ev_d cal)
      end;
      if churn_k > 0 && !processed mod churn_k = 0 then churn_action ()
    end
    else continue := false
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let final_dead q =
    let st = Univ.status univ q in
    st = Univ.crashed || st = Univ.left
  in
  let completeness = c.detector = "vcube" in
  let monitor_verdict, monitor_clauses = Sample.finalize sample ~final_dead ~completeness in
  let lat_p50, lat_p95, lat_p99 = Stats.percentiles lat in
  let fs_p50, fs_p95, fs_p99 = Stats.percentiles fs_dur in
  { detector_name = det_spec.Detector.sname;
    procs0 = c.procs;
    requested = c.events;
    processed = !processed;
    vtime = Calendar.now cal;
    final_live = Univ.live_count univ;
    final_count = Univ.count univ;
    crashes = !crashes;
    recoveries = !recoveries;
    joins = !joins;
    leaves = !leaves;
    link_downs = !link_downs;
    link_ups = !link_ups;
    partitions = !partitions;
    heals = !heals;
    sends = !sends;
    drops = !drops;
    detections = !detections;
    lat_p50;
    lat_p95;
    lat_p99;
    false_suspicions = !false_suspicions;
    fs_p50;
    fs_p95;
    fs_p99;
    monitor_verdict;
    monitor_clauses;
    wall_s = wall;
    events_per_s = (if wall > 0.0 then float_of_int !processed /. wall else 0.0);
    peak_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

let deterministic_summary r =
  Printf.sprintf
    "%s n0=%d ev=%d vt=%d live=%d/%d churn=%d/%d/%d/%d links=%d/%d part=%d/%d msg=%d/%d \
     det=%d lat=%d/%d/%d fs=%d dur=%d/%d/%d mon=%s"
    r.detector_name r.procs0 r.processed r.vtime r.final_live r.final_count r.crashes
    r.recoveries r.joins r.leaves r.link_downs r.link_ups r.partitions r.heals r.sends r.drops
    r.detections r.lat_p50 r.lat_p95 r.lat_p99 r.false_suspicions r.fs_p50 r.fs_p95 r.fs_p99
    (Fmt.str "%a" Verdict.pp r.monitor_verdict)

(* Below this much virtual time the first failure-detection timeout
   (2 periods + slack, doubled a few times under churn) need not have
   fired at all, so zero detections is the expected outcome, not a
   detector failure.  At high procs-per-event ratios the budget runs
   out within a couple of ticks — the CI smoke at 10^4 procs x 10^5
   events is exactly such a run. *)
let detection_horizon = 96

let ok r =
  (match r.monitor_verdict with Verdict.Violated _ -> false | _ -> true)
  && (r.crashes + r.leaves = 0 || r.detections > 0 || r.processed < r.requested
     || r.vtime < detection_horizon)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>detector          %s@,\
     universe          %d initial, %d final (%d live)@,\
     events            %d processed (budget %d), virtual time %d ticks@,\
     churn             %d crashes, %d recoveries, %d joins, %d leaves@,\
     network           %d link cuts, %d repairs, %d partitions, %d heals@,\
     messages          %d sent, %d lost to faults@,\
     detections        %d (latency p50/p95/p99 = %d/%d/%d ticks)@,\
     false suspicions  %d (duration p50/p95/p99 = %d/%d/%d ticks)@,\
     sampled monitor   %a@,\
     throughput        %.0f events/s (%.2fs wall)@,\
     peak heap         %d words (%.1f MB)@]"
    r.detector_name r.procs0 r.final_count r.final_live r.processed r.requested r.vtime
    r.crashes r.recoveries r.joins r.leaves r.link_downs r.link_ups r.partitions r.heals
    r.sends r.drops r.detections r.lat_p50 r.lat_p95 r.lat_p99 r.false_suspicions r.fs_p50
    r.fs_p95 r.fs_p99 Verdict.pp r.monitor_verdict r.events_per_s r.wall_s r.peak_words
    (float_of_int (r.peak_words * 8) /. 1048576.0)
