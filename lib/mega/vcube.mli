(** Hierarchical log-n testing in the VCube style (Duarte et al.'s
    system-level-diagnosis line, PAPERS.md).

    The dense id space is organized as a virtual hypercube of
    dimension [d = ceil log2 cap].  Each process [p] round-robins over
    its [d] clusters, one test per protocol period: it pings the
    current cluster's first candidate (the cluster head [p xor
    2^(s-1)], falling back to the next few cluster members it believes
    crashed) and diagnoses a crash when the ack misses its deadline.
    A diagnosed crash is disseminated along the binomial broadcast
    tree — forward to [p xor 2^j] for all [j] below the receiving
    level — reaching the whole cube in O(n) messages and O(log n)
    delivery hops, deduplicated by a small per-process cache of
    recently learned crashes.  An ack from a process believed crashed
    (a recovery) clears the belief.

    State: 4 ints + a 4-slot cache per process; every reaction is
    O(log n) worst case, O(1) typical. *)

val cache_slots : int

val spec : Detector.spec
(** Registered as ["vcube"]. *)
