(** Latency series for the metrics layer: O(1) insertion, percentiles
    computed once at report time. *)

type series

val series : unit -> series
val add : series -> int -> unit
val count : series -> int

val percentiles : series -> int * int * int
(** (p50, p95, p99) by nearest-rank on the sorted series; [(0, 0, 0)]
    when empty. *)
