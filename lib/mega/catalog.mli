(** The scalable-detector catalog of the mega engine. *)

val all : Detector.spec list
val find : string -> Detector.spec option
val names : string list
