type t = Full | Ring of int | Grid | Hypercube

let of_string = function
  | "full" -> Ok Full
  | "ring" -> Ok (Ring 2)
  | "grid" -> Ok Grid
  | "hypercube" -> Ok Hypercube
  | s -> Error (Printf.sprintf "unknown topology %S (full|ring|grid|hypercube)" s)

let to_string = function
  | Full -> "full"
  | Ring _ -> "ring"
  | Grid -> "grid"
  | Hypercube -> "hypercube"

let bits_for n =
  let d = ref 0 in
  while 1 lsl !d < n do
    incr d
  done;
  !d

let side_for n =
  let s = ref 1 in
  while !s * !s < n do
    incr s
  done;
  !s

let degree t ~n =
  let d =
    match t with
    | Full -> 4
    | Ring k -> 2 * k
    | Grid -> 4
    | Hypercube -> bits_for n
  in
  min d (max 0 (n - 1))

let ring_neighbor ~n ~k p j =
  if j < k then (p + j + 1) mod n else (p - (j - k) - 1 + n) mod n

let neighbor t ~n p j =
  if n <= 1 then -1
  else
    match t with
    | Full -> ring_neighbor ~n ~k:2 p j
    | Ring k -> ring_neighbor ~n ~k p j
    | Grid ->
      let side = side_for n in
      let x = p mod side and y = p / side in
      let rows = (n + side - 1) / side in
      let q =
        match j with
        | 0 -> (y * side) + ((x + 1) mod side)
        | 1 -> (y * side) + ((x + side - 1) mod side)
        | 2 -> (((y + 1) mod rows) * side) + x
        | _ -> (((y + rows - 1) mod rows) * side) + x
      in
      if q < n && q <> p then q else -1
    | Hypercube ->
      let q = p lxor (1 lsl j) in
      if q < n then q else -1
