(* Explicit list, not side-effect registration: dune links only the
   modules a program mentions, so a registry filled by module
   initializers would silently lose members. *)
let all = [ Vcube.spec; Hb_pc.spec ]

let find name = List.find_opt (fun s -> s.Detector.sname = name) all
let names = List.map (fun s -> s.Detector.sname) all
