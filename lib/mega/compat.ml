open Afd_ioa
open Afd_core

type kind =
  | Perfect
  | Sigma
  | Omega
  | Anti_omega
  | Omega_k of int
  | Psi_k of int
  | Silent
  | Flip_flop

let name = function
  | Perfect -> "FD-P"
  | Sigma -> "FD-Sigma"
  | Omega -> "FD-Omega"
  | Anti_omega -> "FD-antiOmega"
  | Omega_k k -> Printf.sprintf "FD-Omega%d" k
  | Psi_k k -> Printf.sprintf "FD-Psi%d" k
  | Silent -> "FD-Silent"
  | Flip_flop -> "FD-FlipFlop"

let leader_valued = function
  | Omega | Anti_omega | Flip_flop -> true
  | Perfect | Sigma | Omega_k _ | Psi_k _ | Silent -> false

(* {2 The compiled fd-system}

   State is one int: bit [i] set iff location [i] has crashed, plus
   one aux bool for the flip-flop toggle.  The output payload is also
   an int — a location bitmask for set-valued kinds, a location for
   leader-valued ones, [-1] for "no output enabled". *)

let min_live n crashmask =
  let found = ref (-1) in
  for j = n - 1 downto 0 do
    if (crashmask lsr j) land 1 = 0 then found := j
  done;
  !found

let max_live n crashmask =
  let found = ref (-1) in
  for j = 0 to n - 1 do
    if (crashmask lsr j) land 1 = 0 then found := j
  done;
  !found

(* mirror of [Afd_automata.k_smallest_preferring_live]: the k smallest
   live locations, padded with the smallest crashed ones *)
let k_smallest_preferring_live n k crashmask =
  let m = ref 0 in
  let taken = ref 0 in
  for j = 0 to n - 1 do
    if !taken < k && (crashmask lsr j) land 1 = 0 then begin
      m := !m lor (1 lsl j);
      incr taken
    end
  done;
  for j = 0 to n - 1 do
    if !taken < k && (crashmask lsr j) land 1 = 1 then begin
      m := !m lor (1 lsl j);
      incr taken
    end
  done;
  !m

let output kind n crashmask toggle i =
  match kind with
  | Perfect -> crashmask
  | Sigma -> ((1 lsl n) - 1) land lnot crashmask
  | Omega -> min_live n crashmask
  | Anti_omega -> (
    match min_live n crashmask with
    | -1 -> -1
    | 0 -> if n > 1 then 1 else -1
    | _ -> 0)
  | Omega_k k -> k_smallest_preferring_live n k crashmask
  | Psi_k k -> k_smallest_preferring_live n k crashmask
  | Silent -> if i = 0 then crashmask else -1
  | Flip_flop -> if toggle then max_live n crashmask else min_live n crashmask

(* {2 Draw-for-draw replica of [Scheduler.run]'s Random policy}

   Task indexing follows [Composition.tasks_array] for the fd-system
   composition: indices [0..n-1] are the fair [fd_i] tasks of the
   detector component, [n..2n-1] the unfair [crash_i] tasks.  The
   forced pattern ["crash/crash_<i>"] matches exactly the crash task
   of location [i] (single-digit locations, hence the n <= 9 bound).
   [patience] mirrors [Scheduler.patience]. *)

let patience = 4

type raw = { rc : bool; ri : int; rp : int }

let run_encoded kind ~n ~seed ~crash_at ~steps =
  if n < 1 || n > 9 then invalid_arg "Compat.run: need 1 <= n <= 9";
  if steps < 0 then invalid_arg "Compat.run: negative steps";
  let ntasks = 2 * n in
  let rng = Stdlib.Random.State.make [| seed |] in
  let starving = Array.make ntasks 0 in
  let scratch = Array.make ntasks 0 in
  let univ = (1 lsl n) - 1 in
  let crashable =
    List.fold_left (fun m (_, i) -> m lor (1 lsl (i : Loc.t))) 0 crash_at land univ
  in
  let crashed = ref 0 in
  let pending = ref crashable in
  let toggle = ref false in
  let pending_forced =
    ref (List.stable_sort (fun (a, _) (b, _) -> compare (a : int) b) crash_at)
  in
  let out i = output kind n !crashed !toggle i in
  let enabled_fd i = (!crashed lsr i) land 1 = 0 && out i >= 0 in
  let fired = ref [] in
  let quiescent = ref false in
  let step = ref 0 in
  let continue = ref true in
  let pick_random () =
    (* starvation backstop first, then the seeded uniform choice *)
    let starved = ref (-1) in
    let k = ref 0 in
    while !starved < 0 && !k < ntasks do
      if !k < n && starving.(!k) > patience * ntasks && enabled_fd !k then starved := !k;
      incr k
    done;
    if !starved >= 0 then begin
      starving.(!starved) <- 0;
      !starved
    end
    else begin
      let count = ref 0 in
      for k = 0 to ntasks - 1 do
        if k < n then
          if enabled_fd k then begin
            scratch.(!count) <- k;
            incr count;
            starving.(k) <- starving.(k) + 1
          end
          else starving.(k) <- 0
      done;
      if !count = 0 then -1
      else begin
        let i = Stdlib.Random.State.int rng !count in
        let k = scratch.(!count - 1 - i) in
        starving.(k) <- 0;
        k
      end
    end
  in
  while !continue && !step < steps do
    (* forced candidate: consume at most one entry per iteration, fire
       it when its crash task is enabled, drop it otherwise (the
       policy then picks in the same iteration) — as in
       [Scheduler.run.forced_candidate] *)
    let forced_fire = ref (-1) in
    (match !pending_forced with
    | (at, i) :: rest when at <= !step ->
      pending_forced := rest;
      if (!pending lsr i) land 1 = 1 then forced_fire := i
    | _ -> ());
    if !forced_fire >= 0 then begin
      let i = !forced_fire in
      fired := { rc = true; ri = i; rp = 0 } :: !fired;
      crashed := !crashed lor (1 lsl i);
      pending := !pending land lnot (1 lsl i);
      incr step
    end
    else begin
      let k = pick_random () in
      if k >= 0 then begin
        let payload = out k in
        fired := { rc = false; ri = k; rp = payload } :: !fired;
        if kind = Flip_flop then toggle := not !toggle;
        incr step
      end
      else
        match !pending_forced with
        | [] ->
          quiescent := true;
          continue := false
        | (at, _) :: _ -> step := max (!step + 1) (min at steps)
    end
  done;
  (List.rev !fired, !quiescent, !step)

type 'o outcome = {
  trace : 'o Fd_event.t list;
  quiescent : bool;
  steps_taken : int;
}

let set_of_mask n mask =
  let s = ref Loc.Set.empty in
  for j = 0 to n - 1 do
    if mask land (1 lsl j) <> 0 then s := Loc.Set.add j !s
  done;
  !s

let run_set kind ~n ~seed ~crash_at ~steps =
  if leader_valued kind then invalid_arg "Compat.run_set: leader-valued kind";
  let raw, quiescent, steps_taken = run_encoded kind ~n ~seed ~crash_at ~steps in
  let trace =
    List.map
      (fun r -> if r.rc then Fd_event.Crash r.ri else Fd_event.Output (r.ri, set_of_mask n r.rp))
      raw
  in
  { trace; quiescent; steps_taken }

let run_leader kind ~n ~seed ~crash_at ~steps =
  if not (leader_valued kind) then invalid_arg "Compat.run_leader: set-valued kind";
  let raw, quiescent, steps_taken = run_encoded kind ~n ~seed ~crash_at ~steps in
  let trace =
    List.map
      (fun r -> if r.rc then Fd_event.Crash r.ri else Fd_event.Output (r.ri, (r.rp : Loc.t)))
      raw
  in
  { trace; quiescent; steps_taken }

(* {2 Boxed references and spec verdicts} *)

let reference_set kind ~n ~seed ~crash_at ~steps =
  match kind with
  | Perfect -> Afd_automata.generate_trace ~detector:(Afd_automata.fd_perfect ~n) ~n ~seed ~crash_at ~steps
  | Sigma -> Afd_automata.generate_trace ~detector:(Afd_automata.fd_sigma ~n) ~n ~seed ~crash_at ~steps
  | Omega_k k ->
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_omega_k ~n ~k) ~n ~seed ~crash_at ~steps
  | Psi_k k ->
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_psi_k ~n ~k) ~n ~seed ~crash_at ~steps
  | Silent -> Afd_automata.generate_trace ~detector:(Afd_automata.fd_silent ~n) ~n ~seed ~crash_at ~steps
  | Omega | Anti_omega | Flip_flop -> invalid_arg "Compat.reference_set: leader-valued kind"

let reference_leader kind ~n ~seed ~crash_at ~steps =
  match kind with
  | Omega -> Afd_automata.generate_trace ~detector:(Afd_automata.fd_omega ~n) ~n ~seed ~crash_at ~steps
  | Anti_omega ->
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_anti_omega ~n) ~n ~seed ~crash_at ~steps
  | Flip_flop ->
    Afd_automata.generate_trace ~detector:(Afd_automata.fd_flip_flop ~n) ~n ~seed ~crash_at ~steps
  | _ -> invalid_arg "Compat.reference_leader: set-valued kind"

let spec_verdict_set kind ~n trace =
  match kind with
  | Perfect | Silent -> Afd.check Perfect.spec ~n trace
  | Sigma -> Afd.check Sigma.spec ~n trace
  | Omega_k k -> Afd.check (Omega_k.spec ~k) ~n trace
  | Psi_k k -> Afd.check (Psi_k.spec ~k) ~n trace
  | Omega | Anti_omega | Flip_flop -> invalid_arg "Compat.spec_verdict_set: leader-valued kind"

let spec_verdict_leader kind ~n trace =
  match kind with
  | Omega | Flip_flop -> Afd.check Omega.spec ~n trace
  | Anti_omega -> Afd.check Anti_omega.spec ~n trace
  | _ -> invalid_arg "Compat.spec_verdict_leader: set-valued kind"
