type t = { mutable s : int64 }

let golden = 0x9e3779b97f4a7c15L

let make seed = { s = Int64.of_int seed }

let next30 t =
  t.s <- Int64.add t.s golden;
  Int64.to_int (Int64.shift_right_logical (Afd_ioa.Scheduler.Seed.mix64 t.s) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next30 t mod bound

let bool t = next30 t land 1 = 1
