(** Congruence harness: the mega discipline against the boxed
    [Scheduler]/[Afd_automata.run_system] path.

    At small n with full connectivity the catalog's truthful detectors
    are pure functions of the crash set, so the whole composed
    fd-system state packs into one int (the crash bitmask, plus one
    aux bit for the flip-flop detector) and a step touches only the
    fired task — the mega engine's flat-state, O(touched) discipline.
    This module runs that compiled system under a draw-for-draw
    replica of [Scheduler.run]'s [Random] policy (same RNG stream,
    same starvation backstop, same forced-crash consumption, same
    idle-stepping and quiescence rule), so its fired event sequence
    must be {e identical} to [Afd_automata.generate_trace] — the
    qcheck differential in the test suite asserts exactly that, and
    that the spec verdicts agree, across every detector kind, seed,
    fault pattern and step budget it generates.

    The same congruence discipline gated PRs 7–8 (online ≡ offline
    monitors, compiled ≡ boxed exploration). *)

open Afd_ioa
open Afd_core

type kind =
  | Perfect
  | Sigma
  | Omega
  | Anti_omega
  | Omega_k of int
  | Psi_k of int
  | Silent
  | Flip_flop

val name : kind -> string

val leader_valued : kind -> bool
(** Leader-valued kinds ([Omega], [Anti_omega], [Flip_flop]) output a
    location; the rest output location sets. *)

val reference_set :
  kind -> n:int -> seed:int -> crash_at:(int * Loc.t) list -> steps:int -> Loc.Set.t Fd_event.t list
(** [Afd_automata.generate_trace] of the matching catalog automaton —
    the boxed reference the mega run must equal (set-valued kinds). *)

val reference_leader :
  kind -> n:int -> seed:int -> crash_at:(int * Loc.t) list -> steps:int -> Loc.t Fd_event.t list

type 'o outcome = {
  trace : 'o Fd_event.t list;
  quiescent : bool;
  steps_taken : int;
}

val run_set :
  kind -> n:int -> seed:int -> crash_at:(int * Loc.t) list -> steps:int -> Loc.Set.t outcome
(** Mega-style run of a set-valued kind.  Raises [Invalid_argument] on
    leader-valued kinds, [n] outside [1..9] (the forced-pattern
    replica needs single-digit task names), or negative steps. *)

val run_leader :
  kind -> n:int -> seed:int -> crash_at:(int * Loc.t) list -> steps:int -> Loc.t outcome

val spec_verdict_set : kind -> n:int -> Loc.Set.t Fd_event.t list -> Verdict.t
(** Verdict of the matching catalog spec on a trace. *)

val spec_verdict_leader : kind -> n:int -> Loc.t Fd_event.t list -> Verdict.t
