(** Connection topologies over the dense id space.

    Neighbors are computed arithmetically — no adjacency storage, so a
    10^6-process universe costs nothing.  [n] is the current universe
    size ({!Univ.count}); joiners extend the id space and the
    neighborhoods follow. *)

type t =
  | Full  (** full connectivity; monitoring uses a degree-4 ring overlay *)
  | Ring of int  (** [Ring k]: k successors and k predecessors *)
  | Grid  (** 2D torus, 4 neighbors *)
  | Hypercube  (** dimension [ceil log2 n] *)

val of_string : string -> (t, string) result
(** ["full" | "ring" | "grid" | "hypercube"]. *)

val to_string : t -> string

val degree : t -> n:int -> int
(** Maximum out-degree at universe size [n]. *)

val neighbor : t -> n:int -> int -> int -> int
(** [neighbor t ~n p j] is the [j]-th neighbor of [p]
    ([j < degree t ~n]), or [-1] when that slot is absent (hypercube
    edge beyond the universe, grid cell off the partial last row). *)
