(** The discrete-event mega engine.

    One run = one universe of up to ~10^6 processes stepped through a
    calendar of message-delivery and timer events, under a seeded
    churn adversary.  Each popped event touches only the processes it
    names — O(degree) work, no universe scans — which is what buys
    millions of events per second where the task-probing scheduler
    tops out at thousands of locations.

    Determinism: the engine is single-threaded and every random
    decision (delivery delay, protocol jitter, churn) comes from a
    splitmix64 stream derived from [cfg.seed] via
    [Scheduler.Seed.derive], so every field of the {!report} except
    the wall-clock ones is a pure function of the configuration. *)

open Afd_core

type cfg = {
  procs : int;  (** initial universe size (1 .. 1_500_000) *)
  events : int;  (** event budget: stop after this many pops *)
  churn_rate : float;  (** churn actions per 1000 processed events *)
  topology : Topology.t;
  detector : string;  (** a {!Catalog} name *)
  seed : int;
  sample : int;  (** sampled-monitor size, clamped to [1, 63] *)
}

val cfg :
  ?churn_rate:float ->
  ?topology:Topology.t ->
  ?detector:string ->
  ?seed:int ->
  ?sample:int ->
  procs:int ->
  events:int ->
  unit ->
  cfg
(** Defaults: churn 5.0, ring topology, ["vcube"], seed 1, sample 32. *)

type report = {
  detector_name : string;
  procs0 : int;
  requested : int;
  processed : int;  (** events actually popped *)
  vtime : int;  (** final virtual time, ticks *)
  final_live : int;
  final_count : int;
  crashes : int;
  recoveries : int;
  joins : int;
  leaves : int;
  link_downs : int;
  link_ups : int;
  partitions : int;
  heals : int;
  sends : int;
  drops : int;  (** sends lost to down links or partitions *)
  detections : int;  (** dead processes first-suspected by someone *)
  lat_p50 : int;
  lat_p95 : int;
  lat_p99 : int;  (** detection latency, virtual ticks *)
  false_suspicions : int;
  fs_p50 : int;
  fs_p95 : int;
  fs_p99 : int;  (** false-suspicion duration, virtual ticks *)
  monitor_verdict : Verdict.t;
  monitor_clauses : (string * Verdict.t) list;
  wall_s : float;  (** nondeterministic: wall-clock seconds *)
  events_per_s : float;  (** nondeterministic: throughput *)
  peak_words : int;  (** nondeterministic-ish: major-heap peak *)
}

val run : cfg -> report

val deterministic_summary : report -> string
(** One-line summary of the deterministic fields only — safe for BENCH
    row details (byte-identical at any [--jobs]). *)

val ok : report -> bool
(** The CN gate: the sampled monitor latched no violation, and some
    injected fault was detected — unless the run could not have
    detected any (calendar drained early, or the event budget ran out
    before virtual time reached the first detection timeout). *)

val pp_report : Format.formatter -> report -> unit
