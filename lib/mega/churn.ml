type action =
  | Crash
  | Recover
  | Join
  | Leave
  | Link_down
  | Link_up
  | Partition
  | Heal

let pick rng =
  let d = Rng.int rng 100 in
  if d < 30 then Crash
  else if d < 45 then Recover
  else if d < 60 then Join
  else if d < 70 then Leave
  else if d < 80 then Link_down
  else if d < 88 then Link_up
  else if d < 94 then Partition
  else Heal

let to_string = function
  | Crash -> "crash"
  | Recover -> "recover"
  | Join -> "join"
  | Leave -> "leave"
  | Link_down -> "link-down"
  | Link_up -> "link-up"
  | Partition -> "partition"
  | Heal -> "heal"
