(** The process universe: dense interned ids, flat status bytes.

    External process identities (arbitrary ints — initial members are
    [0..n-1], joiners get fresh large ids) are interned to dense ids
    [0..count-1] through a {!Afd_analysis.Pack.interner}, so every
    per-process table in the engine and the detectors is a flat array
    indexed by dense id.  Statuses are one byte per process; nothing
    here is O(universe) per event. *)

type t

(** Status codes. *)

val live : int
val crashed : int
val left : int

val create : cap:int -> n:int -> t
(** [create ~cap ~n] starts with processes [0..n-1] live (external id
    = dense id) and room for [cap - n] joiners. *)

val cap : t -> int
val count : t -> int
(** Dense ids allocated so far (live or not). *)

val live_count : t -> int

val status : t -> int -> int
(** Status of a dense id ({!live}, {!crashed} or {!left}). *)

val is_live : t -> int -> bool

val set_status : t -> int -> int -> unit
(** Transition a dense id's status, maintaining the live count. *)

val join : t -> ext:int -> int option
(** Intern a fresh external id as a new live process; [None] when the
    capacity is exhausted or the external id is already present. *)

val ext_id : t -> int -> int
(** External identity of a dense id. *)
