open Afd_analysis

type series = Pack.ints

let series () = Pack.ints ()
let add s v = Pack.ints_push s v
let count s = Pack.ints_len s

let percentiles s =
  let n = Pack.ints_len s in
  if n = 0 then (0, 0, 0)
  else begin
    let a = Array.init n (Pack.ints_get s) in
    Array.sort compare a;
    let at p = a.(min (n - 1) (p * (n - 1) / 100)) in
    (at 50, at 95, at 99)
  end
