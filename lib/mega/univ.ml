open Afd_analysis

let live = 1
let crashed = 2
let left = 3

type t = {
  ucap : int;
  statuses : Bytes.t;
  ids : int Pack.interner;
  ext : int array;
  mutable n : int;
  mutable nlive : int;
}

let create ~cap ~n =
  if n < 1 || n > cap then invalid_arg "Univ.create: need 1 <= n <= cap";
  let t =
    { ucap = cap;
      statuses = Bytes.make cap '\000';
      ids = Pack.interner ~hash:(fun (x : int) -> x * 0x9e3779b1) ~equal:Int.equal ();
      ext = Array.make cap (-1);
      n = 0;
      nlive = 0;
    }
  in
  for i = 0 to n - 1 do
    let id = Pack.intern t.ids i in
    assert (id = i);
    t.ext.(i) <- i;
    Bytes.unsafe_set t.statuses i (Char.chr live)
  done;
  t.n <- n;
  t.nlive <- n;
  t

let cap t = t.ucap
let count t = t.n
let live_count t = t.nlive
let status t i = Char.code (Bytes.unsafe_get t.statuses i)
let is_live t i = status t i = live

let set_status t i s =
  let old = status t i in
  if old = live && s <> live then t.nlive <- t.nlive - 1;
  if old <> live && s = live then t.nlive <- t.nlive + 1;
  Bytes.unsafe_set t.statuses i (Char.chr s)

let join t ~ext =
  if t.n >= t.ucap then None
  else begin
    let id = Pack.intern t.ids ext in
    if id <> t.n then None (* external id already interned *)
    else begin
      t.ext.(id) <- ext;
      t.n <- t.n + 1;
      Bytes.unsafe_set t.statuses id (Char.chr live);
      t.nlive <- t.nlive + 1;
      Some id
    end
  end

let ext_id t i = t.ext.(i)
