(** Allocation-free splitmix64 streams for the mega engine.

    Each stream is seeded from {!Afd_ioa.Scheduler.Seed.derive}, so
    every random decision in a run is a pure function of the root seed
    and the stream key — runs are byte-reproducible at any [--jobs]
    (the engine is single-threaded; parallelism only ever runs whole
    cells, each with its own derived root). *)

type t

val make : int -> t
(** [make seed] starts a stream at [seed] (use
    [Scheduler.Seed.derive] to produce it). *)

val int : t -> int -> int
(** [int t bound] draws uniformly-enough from [\[0, bound)] for
    simulation purposes ([bound] in [\[1, 2^30)]; modulo bias is
    below 2^-10 at the bounds the engine uses). *)

val bool : t -> bool
