let max_slots = 8

let tag_hello = 0
let tag_welcome = 1
let tag_hb = 2

let make (ctx : Detector.ctx) =
  let cap = Univ.cap ctx.univ in
  let deg = min max_slots (max 1 (Topology.degree ctx.topo ~n:cap)) in
  (* flat per-(process, slot) state *)
  let nbr = Array.make (cap * deg) (-1) in
  let last = Array.make (cap * deg) 0 in
  let tmo = Array.make (cap * deg) 0 in
  let susp = Bytes.make (cap * deg) '\000' in
  let round = Bytes.make cap '\000' in
  let initial_tmo = (2 * ctx.period) + 2 in
  let tmo_cap = 32 * ctx.period in
  let clear_slots p =
    let base = p * deg in
    for j = 0 to deg - 1 do
      nbr.(base + j) <- -1;
      Bytes.unsafe_set susp (base + j) '\000'
    done
  in
  let slot_of p q =
    let base = p * deg in
    let found = ref (-1) in
    for j = 0 to deg - 1 do
      if !found < 0 && nbr.(base + j) = q then found := base + j
    done;
    !found
  in
  (* Adopt [q] into [p]'s membership (discovery, or an unknown
     participant announcing itself); full table means [q] stays
     unmonitored by [p] — bounded membership is the point. *)
  let adopt p q =
    let s = slot_of p q in
    if s >= 0 then s
    else begin
      let base = p * deg in
      let free = ref (-1) in
      for j = deg - 1 downto 0 do
        if nbr.(base + j) < 0 then free := base + j
      done;
      if !free >= 0 then begin
        nbr.(!free) <- q;
        last.(!free) <- Calendar.now ctx.cal;
        tmo.(!free) <- initial_tmo;
        Bytes.unsafe_set susp !free '\000'
      end;
      !free
    end
  in
  let topo_degree p =
    ignore p;
    min deg (Topology.degree ctx.topo ~n:(Univ.count ctx.univ))
  in
  let say_hello p ~all =
    (* forward edges only on the initial hello: each link is
       discovered from one side, the WELCOME closes it — halves the
       discovery burst at 10^6 processes *)
    let d = topo_degree p in
    let limit = if all then d else (d + 1) / 2 in
    for j = 0 to limit - 1 do
      let q = Topology.neighbor ctx.topo ~n:(Univ.count ctx.univ) p j in
      if q >= 0 && q <> p then ctx.send ~src:p ~dst:q ~tag:tag_hello ~payload:0
    done
  in
  let on_start p =
    clear_slots p;
    Bytes.unsafe_set round p '\000';
    (* a joiner announces itself to its whole neighborhood: the
       incumbents have never heard of it *)
    say_hello p ~all:(Calendar.now ctx.cal > 0);
    ctx.set_timer ~p ~after:(1 + Rng.int ctx.det_rng ctx.period)
  in
  let on_stop p = clear_slots p in
  let on_timer p =
    let now = Calendar.now ctx.cal in
    let base = p * deg in
    for j = 0 to deg - 1 do
      let q = nbr.(base + j) in
      if q >= 0 then begin
        if Bytes.unsafe_get susp (base + j) = '\000' && now - last.(base + j) > tmo.(base + j)
        then begin
          Bytes.unsafe_set susp (base + j) '\001';
          ctx.suspect ~observer:p ~target:q ~suspected:true
        end;
        ctx.send ~src:p ~dst:q ~tag:tag_hb ~payload:0
      end
    done;
    let r = (Char.code (Bytes.unsafe_get round p) + 1) land 0xff in
    Bytes.unsafe_set round p (Char.chr r);
    (* periodic re-discovery: neighbors that joined after our last
       hello, or whose hello we lost *)
    if r land 3 = 0 && slot_of p (-1) >= 0 then say_hello p ~all:false;
    ctx.set_timer ~p ~after:ctx.period
  in
  let on_receive ~src ~dst ~tag ~payload =
    ignore payload;
    let p = dst in
    if tag = tag_hello then begin
      ignore (adopt p src);
      ctx.send ~src:p ~dst:src ~tag:tag_welcome ~payload:0
    end
    else begin
      (* welcome and heartbeat both refresh (and, if needed, adopt) *)
      let s = adopt p src in
      if s >= 0 then begin
        if Bytes.unsafe_get susp s = '\001' then begin
          (* false suspicion corrected: forgive and back off *)
          Bytes.unsafe_set susp s '\000';
          ctx.suspect ~observer:p ~target:src ~suspected:false;
          tmo.(s) <- min (2 * tmo.(s)) tmo_cap
        end;
        last.(s) <- Calendar.now ctx.cal
      end
    end
  in
  { Detector.dname = "hb-pc"; on_start; on_stop; on_timer; on_receive }

let spec =
  { Detector.sname = "hb-pc";
    sdoc =
      "heartbeats over a partially connected neighborhood, discovery of \
       unknown participants, adaptive per-peer timeouts";
    instantiate = make;
  }
