(** The event calendar of the mega engine: a timing wheel with an
    overflow heap.

    Events are 5-int records [(kind, a, b, c, d)] scheduled at integer
    virtual times.  Events within the wheel horizon ([now, now + W))
    live in per-time buckets of a [W]-slot wheel; farther events wait
    in a binary min-heap keyed by [(time, seq)] and are drained into
    the wheel as [now] advances past their horizon.  Both paths
    preserve global creation (FIFO) order among events with equal
    timestamps: heap entries for a bucket are drained before any
    direct insert into that bucket epoch can occur, and within each
    path entries are kept in sequence order.

    [pop]/[schedule] are allocation-free after warm-up (buckets, heap
    and the popped-event fields are reused), which is what keeps the
    engine at millions of events per second. *)

type t

val create : ?wheel_bits:int -> unit -> t
(** [wheel_bits] (default 12) sizes the wheel at [2^wheel_bits]
    ticks. *)

val now : t -> int
(** Current virtual time: the timestamp of the last popped event. *)

val pending : t -> int
(** Events scheduled and not yet popped. *)

val schedule : t -> at:int -> kind:int -> a:int -> b:int -> c:int -> d:int -> unit
(** Schedule an event at virtual time [at] ([at < now] is clamped to
    [now]).  Fields must be nonnegative ints (the engine packs ids and
    payloads; nothing is boxed). *)

val pop : t -> bool
(** Advance to and consume the earliest pending event; [false] when
    the calendar is empty.  After [pop t = true] the event is exposed
    by {!ev_kind} .. {!ev_d} until the next [pop]. *)

val ev_kind : t -> int
val ev_a : t -> int
val ev_b : t -> int
val ev_c : t -> int
val ev_d : t -> int
