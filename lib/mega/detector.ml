type ctx = {
  univ : Univ.t;
  topo : Topology.t;
  cal : Calendar.t;
  det_rng : Rng.t;
  period : int;
  send : src:int -> dst:int -> tag:int -> payload:int -> unit;
  set_timer : p:int -> after:int -> unit;
  suspect : observer:int -> target:int -> suspected:bool -> unit;
}

type t = {
  dname : string;
  on_start : int -> unit;
  on_stop : int -> unit;
  on_timer : int -> unit;
  on_receive : src:int -> dst:int -> tag:int -> payload:int -> unit;
}

type spec = {
  sname : string;
  sdoc : string;
  instantiate : ctx -> t;
}
