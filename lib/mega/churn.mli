(** The churn/adversary mix: which upheaval hits the universe next.

    The draw is a pure function of the churn rng stream (derived from
    the root seed via [Scheduler.Seed.derive]), so fault schedules are
    byte-reproducible. *)

type action =
  | Crash
  | Recover
  | Join
  | Leave
  | Link_down
  | Link_up
  | Partition
  | Heal

val pick : Rng.t -> action
(** Weighted draw: crashes dominate (30%), then recoveries and joins
    (15% each), leaves (10%), link failures and repairs (10% + 8%),
    partitions and heals (6% + 6%). *)

val to_string : action -> string
