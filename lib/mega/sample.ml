open Afd_ioa
open Afd_prop

(* Ring entries are packed ints: kind (2 bits) | observer (6) |
   target (6) — the sample is at most 64 ids. *)
let k_set = 0
let k_clear = 1
let k_crash = 2

let pack k o t = (k lsl 12) lor (o lsl 6) lor t
let entry_kind e = e lsr 12
let entry_obs e = (e lsr 6) land 63
let entry_tgt e = e land 63

type t = {
  s : int;
  window : int;
  ring : int array;
  mutable start : int;
  mutable len : int;
  mat : Bytes.t;  (* current s*s suspicion matrix *)
  basemat : Bytes.t;  (* matrix state before the window *)
  mutable base_crashed : int;  (* bitmask of crashes evicted from the window *)
}

let create ~s ~window =
  if s < 1 || s > 63 then invalid_arg "Sample.create: need 1 <= s <= 63";
  { s;
    window = max 16 window;
    ring = Array.make (max 16 window) 0;
    start = 0;
    len = 0;
    mat = Bytes.make (s * s) '\000';
    basemat = Bytes.make (s * s) '\000';
    base_crashed = 0;
  }

let size t = t.s

let push t e =
  if t.len = t.window then begin
    (* evict the oldest into the base snapshot *)
    let old = t.ring.(t.start) in
    let k = entry_kind old in
    if k = k_crash then t.base_crashed <- t.base_crashed lor (1 lsl entry_tgt old)
    else
      Bytes.unsafe_set t.basemat
        ((entry_obs old * t.s) + entry_tgt old)
        (if k = k_set then '\001' else '\000');
    t.start <- (t.start + 1) mod t.window;
    t.len <- t.len - 1
  end;
  t.ring.((t.start + t.len) mod t.window) <- e;
  t.len <- t.len + 1

let susp t ~observer ~target ~suspected =
  if observer < t.s && target < t.s && observer <> target then begin
    let i = (observer * t.s) + target in
    let cur = Bytes.unsafe_get t.mat i = '\001' in
    if cur <> suspected then begin
      Bytes.unsafe_set t.mat i (if suspected then '\001' else '\000');
      push t (pack (if suspected then k_set else k_clear) observer target)
    end
  end

let crash t p = if p < t.s then push t (pack k_crash 0 p)

let suspected t ~observer ~target =
  observer < t.s && target < t.s
  && Bytes.unsafe_get t.mat ((observer * t.s) + target) = '\001'

let clear_row t o =
  if o < t.s then
    for q = 0 to t.s - 1 do
      if Bytes.unsafe_get t.mat ((o * t.s) + q) = '\001' then
        susp t ~observer:o ~target:q ~suspected:false
    done

(* {2 Formulas over the sampled universe} *)

let no_self_suspicion =
  Prop.always ~name:"sample.no-self-suspicion" (fun _st ev ->
      match ev with
      | Fd_event.Output (o, set) when Loc.Set.mem o set -> Error "observer suspects itself"
      | Fd_event.Output _ | Fd_event.Crash _ -> Ok ())

let accuracy =
  Prop.eventually_stable ~name:"sample.accuracy" (fun st ->
      let ok =
        Loc.Map.for_all
          (fun o set -> Loc.Set.mem o st.Prop.crashed || Loc.Set.subset set st.Prop.crashed)
          st.Prop.last_output
      in
      Prop.j_of_bool ~undecided:"a live observer still suspects a live peer" ok)

let completeness =
  Prop.eventually_stable ~name:"sample.completeness" (fun st ->
      let ok =
        Loc.Map.for_all
          (fun o set ->
            Loc.Set.mem o st.Prop.crashed || Loc.Set.subset st.Prop.crashed set)
          st.Prop.last_output
      in
      Prop.j_of_bool ~undecided:"a sampled crash is not yet suspected by every sampled observer"
        ok)

let formula ~completeness:want_completeness =
  if want_completeness then Prop.conj [ no_self_suspicion; accuracy; completeness ]
  else Prop.conj [ no_self_suspicion; accuracy ]

let set_of_mask s mask =
  let set = ref Loc.Set.empty in
  for q = 0 to s - 1 do
    if mask land (1 lsl q) <> 0 then set := Loc.Set.add q !set
  done;
  !set

let finalize t ~final_dead ~completeness =
  let mon = Monitor.create ~n:t.s (formula ~completeness) in
  (* A crash whose ring entry was evicted (folded into [base_crashed])
     or that the engine never recorded must still reach the monitor —
     only in-window crash entries will be replayed below. *)
  let win_crash = ref 0 in
  for j = 0 to t.len - 1 do
    let e = t.ring.((t.start + j) mod t.window) in
    if entry_kind e = k_crash then win_crash := !win_crash lor (1 lsl entry_tgt e)
  done;
  for q = 0 to t.s - 1 do
    if final_dead q && !win_crash land (1 lsl q) = 0 then
      Monitor.observe mon (Fd_event.Crash q)
  done;
  (* base suspicions predating the window *)
  let row = Array.make t.s 0 in
  for o = 0 to t.s - 1 do
    for q = 0 to t.s - 1 do
      if Bytes.unsafe_get t.basemat ((o * t.s) + q) = '\001' then
        row.(o) <- row.(o) lor (1 lsl q)
    done;
    if row.(o) <> 0 then Monitor.observe mon (Fd_event.Output (o, set_of_mask t.s row.(o)))
  done;
  (* replay the window *)
  for j = 0 to t.len - 1 do
    let e = t.ring.((t.start + j) mod t.window) in
    let k = entry_kind e in
    if k = k_crash then begin
      if final_dead (entry_tgt e) then Monitor.observe mon (Fd_event.Crash (entry_tgt e))
    end
    else begin
      let o = entry_obs e and q = entry_tgt e in
      if k = k_set then row.(o) <- row.(o) lor (1 lsl q)
      else row.(o) <- row.(o) land lnot (1 lsl q);
      Monitor.observe mon (Fd_event.Output (o, set_of_mask t.s row.(o)))
    end
  done;
  (Monitor.verdict mon, Monitor.clause_verdicts mon)
