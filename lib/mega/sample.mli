(** Sampled online monitoring: `Afd_prop` over a bounded window.

    At 10^6 processes a whole-universe monitor is impossible, so the
    engine samples the first [s] dense ids (the sample is a fixed,
    deterministic subset — initial members, so crashes, recoveries and
    suspicions among them are representative) and keeps (a) an [s x s]
    suspicion matrix updated O(1) per suspicion transition and (b) a
    bounded ring of the last [window] sampled events.  Entries evicted
    from the ring fold into a base snapshot, so at [finalize] the ring
    replays into an exact `Afd_prop.Monitor` trace over universe [s]:
    base suspicions, crashes of processes dead at the end of the run,
    and every in-window suspicion transition as an [Output] event.

    The formulas are the paper's clauses restricted to the sample:
    ["sample.no-self-suspicion"] (safety, exact), ["sample.accuracy"]
    (eventual accuracy under limit extension) and — for detectors with
    global dissemination — ["sample.completeness"]. *)

open Afd_core

type t

val create : s:int -> window:int -> t
val size : t -> int

val susp : t -> observer:int -> target:int -> suspected:bool -> unit
(** Record a suspicion transition; ids outside the sample are ignored,
    as are non-transitions (the matrix is authoritative). *)

val crash : t -> int -> unit
(** Record the crash (or departure) of a sampled process. *)

val clear_row : t -> int -> unit
(** The observer stopped: retract its outstanding suspicions (emits
    the corresponding clear transitions). *)

val suspected : t -> observer:int -> target:int -> bool

val finalize :
  t -> final_dead:(int -> bool) -> completeness:bool -> Verdict.t * (string * Verdict.t) list
(** Replay the window into a fresh monitor; [final_dead] decides which
    recorded crashes are real at end of run (a crash followed by a
    recovery is not limit-extended as a crash).  Returns the overall
    verdict and per-clause verdicts. *)
