let cache_slots = 4

let tag_ping = 0
let tag_ack = 1
let tag_crashed = 2

(* CRASHED payload: target id in the high bits, forwarding level in
   the low 5 (dimension <= 21 at the 2^21 id-space bound). *)
let pack_crashed q lvl = (q lsl 5) lor lvl
let crashed_target pl = pl lsr 5
let crashed_level pl = pl land 31

let make (ctx : Detector.ctx) =
  let cap = Univ.cap ctx.univ in
  let dim =
    let d = ref 1 in
    while 1 lsl !d < cap do
      incr d
    done;
    !d
  in
  if dim > 21 then invalid_arg "Vcube: universe beyond 2^21 processes";
  let cur_s = Bytes.make cap '\001' in
  let out_t = Array.make cap (-1) in
  let out_dl = Array.make cap 0 in
  let cache = Array.make (cap * cache_slots) (-1) in
  let cpos = Bytes.make cap '\000' in
  let ack_tmo = (2 * ctx.period) + 2 in
  let in_cache p q =
    let base = p * cache_slots in
    let found = ref false in
    for j = 0 to cache_slots - 1 do
      if cache.(base + j) = q then found := true
    done;
    !found
  in
  let cache_add p q =
    let base = p * cache_slots in
    let j = Char.code (Bytes.unsafe_get cpos p) in
    cache.(base + j) <- q;
    Bytes.unsafe_set cpos p (Char.chr ((j + 1) mod cache_slots))
  in
  let cache_remove p q =
    let base = p * cache_slots in
    for j = 0 to cache_slots - 1 do
      if cache.(base + j) = q then cache.(base + j) <- -1
    done
  in
  let clear_cache p =
    let base = p * cache_slots in
    for j = 0 to cache_slots - 1 do
      cache.(base + j) <- -1
    done;
    Bytes.unsafe_set cpos p '\000'
  in
  (* binomial-tree forwarding: on learning CRASHED(q) at level [lvl],
     tell the cube neighbors below that level *)
  let disseminate p q lvl =
    let n = Univ.count ctx.univ in
    for j = lvl - 1 downto 0 do
      let r = p lxor (1 lsl j) in
      if r < n && r <> q then
        ctx.send ~src:p ~dst:r ~tag:tag_crashed ~payload:(pack_crashed q j)
    done
  in
  let learn p q lvl =
    if q <> p && not (in_cache p q) then begin
      cache_add p q;
      ctx.suspect ~observer:p ~target:q ~suspected:true;
      disseminate p q lvl
    end
  in
  let on_start p =
    Bytes.unsafe_set cur_s p '\001';
    out_t.(p) <- -1;
    clear_cache p;
    ctx.set_timer ~p ~after:(1 + Rng.int ctx.det_rng ctx.period)
  in
  let on_stop p = out_t.(p) <- -1 in
  let on_timer p =
    let now = Calendar.now ctx.cal in
    if out_t.(p) >= 0 && now >= out_dl.(p) then begin
      (* ack deadline missed: diagnose and disseminate from the top *)
      let q = out_t.(p) in
      out_t.(p) <- -1;
      learn p q dim
    end;
    if out_t.(p) < 0 then begin
      let n = Univ.count ctx.univ in
      let s = Char.code (Bytes.unsafe_get cur_s p) in
      Bytes.unsafe_set cur_s p (Char.chr ((s mod dim) + 1));
      let head = p lxor (1 lsl (s - 1)) in
      (* first cluster member not believed crashed, bounded fallback *)
      let width = 1 lsl (s - 1) in
      let cand = ref (-1) in
      let e = ref 0 in
      while !cand < 0 && !e < min width cache_slots do
        let c = head lxor !e in
        if c < n && c <> p && not (in_cache p c) then cand := c;
        incr e
      done;
      if !cand >= 0 then begin
        ctx.send ~src:p ~dst:!cand ~tag:tag_ping ~payload:0;
        out_t.(p) <- !cand;
        out_dl.(p) <- now + ack_tmo
      end
    end;
    ctx.set_timer ~p ~after:ctx.period
  in
  let on_receive ~src ~dst ~tag ~payload =
    let p = dst in
    if tag = tag_ping then ctx.send ~src:p ~dst:src ~tag:tag_ack ~payload:0
    else if tag = tag_ack then begin
      if out_t.(p) = src then out_t.(p) <- -1;
      if in_cache p src then begin
        (* a believed-crashed process answered: recovery (or a false
           diagnosis) observed *)
        cache_remove p src;
        ctx.suspect ~observer:p ~target:src ~suspected:false
      end
    end
    else begin
      let q = crashed_target payload in
      let lvl = crashed_level payload in
      if q <> p then learn p q lvl
    end
  in
  { Detector.dname = "vcube"; on_start; on_stop; on_timer; on_receive }

let spec =
  { Detector.sname = "vcube";
    sdoc =
      "hierarchical log-n testing over a virtual hypercube with \
       binomial-tree crash dissemination (VCube-style diagnosis)";
    instantiate = make;
  }
