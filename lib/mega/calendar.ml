(* Bucket records are 5 consecutive ints: kind, a, b, c, d.  All
   events in a bucket share one timestamp, so insertion order is
   creation order (the heap drains a bucket's far-scheduled events
   before any near-scheduled insert can target that bucket epoch:
   direct insertion requires [at - now < wsize], and the drain runs at
   the first [now] where that holds, inside [pop], before user code at
   that time runs again). *)

type bucket = { mutable data : int array; mutable len : int; mutable cur : int }

type t = {
  wsize : int;
  wmask : int;
  buckets : bucket array;
  occ : Bytes.t;  (* occupancy per bucket, for the advance scan *)
  mutable wcount : int;  (* nonempty buckets *)
  mutable now : int;
  mutable pending : int;
  mutable seq : int;
  (* overflow min-heap on (time, seq), parallel arrays *)
  mutable ht : int array;
  mutable hs : int array;
  mutable hk : int array;
  mutable ha : int array;
  mutable hb : int array;
  mutable hc : int array;
  mutable hd : int array;
  mutable hlen : int;
  (* last popped event *)
  mutable ek : int;
  mutable ea : int;
  mutable eb : int;
  mutable ec : int;
  mutable ed : int;
}

let create ?(wheel_bits = 12) () =
  if wheel_bits < 2 || wheel_bits > 20 then
    invalid_arg "Calendar.create: wheel_bits out of range";
  let wsize = 1 lsl wheel_bits in
  { wsize;
    wmask = wsize - 1;
    buckets = Array.init wsize (fun _ -> { data = [||]; len = 0; cur = 0 });
    occ = Bytes.make wsize '\000';
    wcount = 0;
    now = 0;
    pending = 0;
    seq = 0;
    ht = Array.make 16 0;
    hs = Array.make 16 0;
    hk = Array.make 16 0;
    ha = Array.make 16 0;
    hb = Array.make 16 0;
    hc = Array.make 16 0;
    hd = Array.make 16 0;
    hlen = 0;
    ek = 0;
    ea = 0;
    eb = 0;
    ec = 0;
    ed = 0;
  }

let now t = t.now
let pending t = t.pending
let ev_kind t = t.ek
let ev_a t = t.ea
let ev_b t = t.eb
let ev_c t = t.ec
let ev_d t = t.ed

let wheel_insert t at k a b c d =
  let i = at land t.wmask in
  let bk = t.buckets.(i) in
  let cap = Array.length bk.data in
  if bk.len + 5 > cap then begin
    let d' = Array.make (max 20 (2 * cap)) 0 in
    Array.blit bk.data 0 d' 0 bk.len;
    bk.data <- d'
  end;
  let p = bk.len in
  bk.data.(p) <- k;
  bk.data.(p + 1) <- a;
  bk.data.(p + 2) <- b;
  bk.data.(p + 3) <- c;
  bk.data.(p + 4) <- d;
  if bk.len = bk.cur then begin
    (* bucket was (logically) empty *)
    Bytes.unsafe_set t.occ i '\001';
    t.wcount <- t.wcount + 1
  end;
  bk.len <- bk.len + 5

(* (time, seq) lexicographic *)
let heap_less t i j =
  t.ht.(i) < t.ht.(j) || (t.ht.(i) = t.ht.(j) && t.hs.(i) < t.hs.(j))

let heap_swap t i j =
  let sw a i j =
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  in
  sw t.ht i j;
  sw t.hs i j;
  sw t.hk i j;
  sw t.ha i j;
  sw t.hb i j;
  sw t.hc i j;
  sw t.hd i j

let heap_insert t at seq k a b c d =
  let cap = Array.length t.ht in
  if t.hlen >= cap then begin
    let grow a = Array.append a (Array.make cap 0) in
    t.ht <- grow t.ht;
    t.hs <- grow t.hs;
    t.hk <- grow t.hk;
    t.ha <- grow t.ha;
    t.hb <- grow t.hb;
    t.hc <- grow t.hc;
    t.hd <- grow t.hd
  end;
  let i = t.hlen in
  t.ht.(i) <- at;
  t.hs.(i) <- seq;
  t.hk.(i) <- k;
  t.ha.(i) <- a;
  t.hb.(i) <- b;
  t.hc.(i) <- c;
  t.hd.(i) <- d;
  t.hlen <- t.hlen + 1;
  let j = ref i in
  while !j > 0 && heap_less t !j ((!j - 1) / 2) do
    heap_swap t !j ((!j - 1) / 2);
    j := (!j - 1) / 2
  done

let heap_pop_into_wheel t =
  (* move the heap minimum into its wheel bucket *)
  wheel_insert t t.ht.(0) t.hk.(0) t.ha.(0) t.hb.(0) t.hc.(0) t.hd.(0);
  t.hlen <- t.hlen - 1;
  if t.hlen > 0 then begin
    heap_swap t 0 t.hlen;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let m = ref !i in
      if l < t.hlen && heap_less t l !m then m := l;
      if r < t.hlen && heap_less t r !m then m := r;
      if !m = !i then continue := false
      else begin
        heap_swap t !i !m;
        i := !m
      end
    done
  end

let drain t =
  while t.hlen > 0 && t.ht.(0) - t.now < t.wsize do
    heap_pop_into_wheel t
  done

let schedule t ~at ~kind ~a ~b ~c ~d =
  let at = if at <= t.now then t.now else at in
  t.pending <- t.pending + 1;
  t.seq <- t.seq + 1;
  if at - t.now < t.wsize then wheel_insert t at kind a b c d
  else heap_insert t at t.seq kind a b c d

let reset_bucket t i =
  let bk = t.buckets.(i) in
  if bk.len > bk.cur then invalid_arg "Calendar: resetting nonempty bucket";
  if Bytes.unsafe_get t.occ i = '\001' then begin
    Bytes.unsafe_set t.occ i '\000';
    t.wcount <- t.wcount - 1
  end;
  bk.len <- 0;
  bk.cur <- 0

let advance t =
  (* precondition: pending > 0 and the current bucket is drained *)
  if t.wcount > 0 then begin
    let b0 = t.now land t.wmask in
    let d = ref 1 in
    while Bytes.unsafe_get t.occ ((b0 + !d) land t.wmask) = '\000' do
      incr d
    done;
    t.now <- t.now + !d
  end
  else t.now <- t.ht.(0);
  drain t

let rec pop t =
  if t.pending = 0 then false
  else begin
    let i = t.now land t.wmask in
    let bk = t.buckets.(i) in
    if bk.cur < bk.len then begin
      let p = bk.cur in
      t.ek <- bk.data.(p);
      t.ea <- bk.data.(p + 1);
      t.eb <- bk.data.(p + 2);
      t.ec <- bk.data.(p + 3);
      t.ed <- bk.data.(p + 4);
      bk.cur <- p + 5;
      t.pending <- t.pending - 1;
      if bk.cur >= bk.len then reset_bucket t i;
      true
    end
    else begin
      advance t;
      pop t
    end
  end
