(** Heartbeat failure detection under partial connectivity and
    unknown participants (after Sens et al., PAPERS.md).

    Processes know only a neighborhood of {e addresses} a priori and
    learn actual participants at runtime: HELLO/WELCOME discovery
    fills a bounded per-process membership table (at most
    {!max_slots} peers), heartbeats flow only along discovered edges,
    and a heartbeat from an unknown sender — a joiner announcing
    itself — is adopted on the spot.  Timeouts adapt: a false
    suspicion corrected by a late heartbeat doubles that peer's
    timeout (capped), the classic eventually-perfect trick.  All state
    is O(cap × degree) flat arrays; every reaction is O(degree). *)

val max_slots : int
(** Membership table width per process (8). *)

val spec : Detector.spec
(** Registered as ["hb-pc"]. *)
