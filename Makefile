# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test lint mc check churn bench bench-json bench-smoke perf clean

all: build

build:
	dune build @all

# unit + property tests, plus the model lint gating the suite
test:
	dune runtest

# the static well-formedness analysis over the automaton catalog
lint:
	dune exec bin/afd_lint.exe

# exhaustive mode: graph lint rules over every reachable state, plus
# the safety model checker proving the catalog specs on the closed
# detector+crash product (a smoke pass also runs in `dune runtest`);
# JOBS=n shards the frontier across n domains with identical verdicts;
# COMPILED=1 routes exploration through the compiled explorer (packed
# states, defunctionalized step tables) — same verdicts, faster;
# SYMMETRY=1 runs the equivariance analyzer (certified subjects
# explore orbit representatives, breaking ones get a named witness)
# and re-verifies every CHK subject under its declared quotient,
# climbing the parametric cutoff ladder for certified ones
mc:
	dune exec bin/afd_lint.exe -- --mc $(if $(MAX_STATES),--max-states $(MAX_STATES),) $(if $(JOBS),--jobs $(JOBS),) $(if $(COMPILED),--compiled,) $(if $(SYMMETRY),--symmetry,)

# online property monitors vs offline trace checks over the detector
# catalog, streaming under windowed retention (smoke mode also runs as
# part of `dune runtest`)
check:
	dune exec bin/afd_sim.exe -- check $(if $(JOBS),--jobs $(JOBS),)

# the mega discrete-event churn simulator (smoke matrix also runs in
# `dune runtest` and CI); override scale with PROCS/EVENTS, e.g.
#   make churn PROCS=1000000 EVENTS=10000000
churn:
	dune exec bin/afd_sim.exe -- churn $(if $(PROCS),--procs $(PROCS),) $(if $(EVENTS),--events $(EVENTS),) $(if $(DETECTOR),--detector $(DETECTOR),) $(if $(TOPOLOGY),--topology $(TOPOLOGY),) $(if $(SEED),--seed $(SEED),)

# the full experiment harness; the E1-E7 matrix runs on all available
# cores (override with JOBS=n)
bench:
	dune exec bench/main.exe -- $(if $(JOBS),--jobs $(JOBS),)

# same, plus the machine-readable BENCH.json for cross-PR perf diffing
bench-json:
	dune exec bench/main.exe -- $(if $(JOBS),--jobs $(JOBS),) --json BENCH.json

# one quick pass over the experiment harness (laptop-scale defaults;
# AFD_BENCH_LARGE=1 adds the n=3 tree)
bench-smoke:
	dune exec bench/main.exe

# throughput gate: re-run the experiment matrix and fail (exit 1) if
# the aggregate transitions/sec regressed more than MAX_REGRESSION
# percent (default 30) against the checked-in baseline
perf:
	dune exec bench/main.exe -- --smoke $(if $(JOBS),--jobs $(JOBS),) --baseline BENCH_baseline.json $(if $(MAX_REGRESSION),--max-regression $(MAX_REGRESSION),)

clean:
	dune clean
