# Convenience entry points; everything is plain dune underneath.

.PHONY: all build test lint bench-smoke clean

all: build

build:
	dune build @all

# unit + property tests, plus the model lint gating the suite
test:
	dune runtest

# the static well-formedness analysis over the automaton catalog
lint:
	dune exec bin/afd_lint.exe

# one quick pass over the experiment harness (laptop-scale defaults;
# AFD_BENCH_LARGE=1 adds the n=3 tree)
bench-smoke:
	dune exec bench/main.exe

clean:
	dune clean
